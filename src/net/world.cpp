#include "net/world.h"

#include <stdexcept>

#include "net/node_stack.h"

namespace pqs::net {

// Full-fidelity link layer: every hop goes through the CSMA/CA MAC and the
// SINR radio/channel. Lives here because it needs World's internals.
class MacLink final : public LinkLayer {
public:
    explicit MacLink(World& world) : world_(world) {}

    void unicast(PacketPtr p, LinkTxCallback done) override {
        send(std::move(p), std::move(done));
    }

    void broadcast(PacketPtr p) override { send(std::move(p), nullptr); }

private:
    void send(PacketPtr p, LinkTxCallback done) {
        const util::NodeId src = p->link_src;
        if (!world_.alive(src) || src >= world_.macs_.size() ||
            world_.macs_[src] == nullptr) {
            if (done) {
                done(false);
            }
            return;
        }
        world_.metrics().count("net." + packet_category(*p) + ".tx");
        phy::Frame frame;
        frame.dst = p->link_dst == kBroadcast ? phy::kBroadcastId
                                              : p->link_dst;
        frame.bytes = p->size_bytes();
        frame.trace = p->trace;
        frame.payload = std::static_pointer_cast<const void>(p);
        world_.macs_[src]->send(std::move(frame), std::move(done));
    }

    World& world_;
};

World::World(WorldParams params)
    : params_(params), rng_(params.seed) {
    geom::RggParams rgg{params_.n, params_.range, params_.avg_degree,
                        geom::Metric::kPlane};
    side_ = rgg.side();
    grid_ = std::make_unique<geom::SpatialGrid>(side_, params_.range);

    // Place nodes; optionally resample until the topology is connected.
    for (int attempt = 0;; ++attempt) {
        positions_.clear();
        for (std::size_t i = 0; i < params_.n; ++i) {
            positions_.push_back(geom::Vec2{rng_.uniform(0.0, side_),
                                            rng_.uniform(0.0, side_)});
        }
        if (!params_.ensure_connected ||
            build_unit_disk_graph(positions_, params_.range, side_)
                .is_connected()) {
            break;
        }
        if (attempt > 100) {
            throw std::runtime_error(
                "World: could not find a connected placement; raise "
                "avg_degree");
        }
    }
    alive_.assign(params_.n, true);
    alive_count_ = params_.n;
    for (util::NodeId id = 0; id < params_.n; ++id) {
        grid_->insert(id, positions_[id]);
    }

    if (params_.mobile) {
        mobility_ =
            std::make_unique<mobility::RandomWaypoint>(params_.waypoint);
    } else {
        mobility_ = mobility::make_static_mobility();
    }

    if (params_.fidelity == Fidelity::kFull) {
        channel_ = std::make_unique<phy::Channel>(
            simulator_, *this, params_.propagation, params_.thresholds);
        link_ = std::make_unique<MacLink>(*this);
    } else {
        link_ = std::make_unique<AbstractLink>(*this, params_.abstract_link);
    }

    for (util::NodeId id = 0; id < params_.n; ++id) {
        create_node_internals(id);
    }
}

World::~World() = default;

void World::create_node_internals(util::NodeId id) {
    if (params_.fidelity == Fidelity::kFull) {
        radios_.resize(std::max<std::size_t>(radios_.size(), id + 1));
        macs_.resize(std::max<std::size_t>(macs_.size(), id + 1));
        radios_[id] = std::make_unique<phy::Radio>(params_.thresholds);
        macs_[id] = std::make_unique<mac::CsmaMac>(
            id, simulator_, *channel_, *radios_[id], params_.mac,
            rng_.fork());
        channel_->attach(id, radios_[id].get());
        macs_[id]->set_rx_handler([this, id](const phy::Frame& frame) {
            deliver(id, std::static_pointer_cast<const Packet>(frame.payload));
        });
        macs_[id]->set_promiscuous_handler(
            [this, id](const phy::Frame& frame) {
                overhear(id, std::static_pointer_cast<const Packet>(
                                 frame.payload));
            });
    }
    stacks_.resize(std::max<std::size_t>(stacks_.size(), id + 1));
    stacks_[id] = std::make_unique<NodeStack>(*this, id, rng_.fork());
}

std::vector<util::NodeId> World::alive_nodes() const {
    std::vector<util::NodeId> out;
    out.reserve(alive_count_);
    for (util::NodeId id = 0; id < alive_.size(); ++id) {
        if (alive_[id]) {
            out.push_back(id);
        }
    }
    return out;
}

bool World::alive(util::NodeId id) const {
    return id < alive_.size() && alive_[id];
}

geom::Vec2 World::position(util::NodeId id) const {
    return positions_.at(id);
}

void World::set_position(util::NodeId id, geom::Vec2 pos) {
    positions_.at(id) = pos;
    if (alive(id)) {
        grid_->move(id, pos);
    }
}

void World::nodes_within(geom::Vec2 center, double radius,
                         std::vector<util::NodeId>& out,
                         util::NodeId exclude) const {
    grid_->query(center, radius, out, exclude);
}

std::vector<util::NodeId> World::physical_neighbors(util::NodeId id) const {
    return grid_->query(positions_.at(id), params_.range, id);
}

geom::Graph World::snapshot_graph() const {
    geom::Graph g(node_count());
    std::vector<util::NodeId> near;
    for (util::NodeId v = 0; v < node_count(); ++v) {
        if (!alive(v)) {
            continue;
        }
        near.clear();
        grid_->query(positions_[v], params_.range, near, v);
        for (const util::NodeId u : near) {
            if (u > v) {
                g.add_edge(v, u);
            }
        }
    }
    return g;
}

NodeStack& World::stack(util::NodeId id) { return *stacks_.at(id); }

void World::start() {
    if (started_) {
        throw std::logic_error("World::start called twice");
    }
    started_ = true;
    for (util::NodeId id = 0; id < node_count(); ++id) {
        if (alive(id)) {
            stacks_[id]->start();
            mobility_->start_node(*this, id, rng_);
        }
    }
}

void World::fail_node(util::NodeId id) {
    if (!alive(id)) {
        return;
    }
    alive_[id] = false;
    --alive_count_;
    grid_->remove(id);
    stacks_[id]->shutdown();
    if (params_.fidelity == Fidelity::kFull) {
        macs_[id]->shutdown();
        channel_->detach(id);
    }
    link_->on_node_failed(id);
}

bool World::revive_node(util::NodeId id) {
    if (id >= alive_.size() || alive_[id] ||
        params_.fidelity == Fidelity::kFull) {
        return false;
    }
    alive_[id] = true;
    ++alive_count_;
    grid_->insert(id, positions_[id]);
    link_->on_node_spawned(id);
    if (started_) {
        stacks_[id]->start();
        mobility_->start_node(*this, id, rng_);
    }
    for (const auto& listener : spawn_listeners_) {
        listener(id);
    }
    return true;
}

util::NodeId World::spawn_node() {
    const auto id = static_cast<util::NodeId>(positions_.size());
    positions_.push_back(
        geom::Vec2{rng_.uniform(0.0, side_), rng_.uniform(0.0, side_)});
    alive_.push_back(true);
    ++alive_count_;
    grid_->insert(id, positions_[id]);
    create_node_internals(id);
    link_->on_node_spawned(id);
    if (started_) {
        stacks_[id]->start();
        mobility_->start_node(*this, id, rng_);
    }
    for (const auto& listener : spawn_listeners_) {
        listener(id);
    }
    return id;
}

void World::deliver(util::NodeId to, PacketPtr p) {
    if (!alive(to)) {
        return;
    }
    stacks_[to]->on_receive(std::move(p));
}

void World::overhear(util::NodeId listener, PacketPtr p) {
    if (!alive(listener)) {
        return;
    }
    stacks_[listener]->on_overhear(p);
}

}  // namespace pqs::net
