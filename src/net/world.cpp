#include "net/world.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "net/node_stack.h"
#include "util/check.h"

namespace pqs::net {

// Full-fidelity link layer: every hop goes through the CSMA/CA MAC and the
// SINR radio/channel. Lives here because it needs World's internals.
class MacLink final : public LinkLayer {
public:
    explicit MacLink(World& world) : world_(world) {}

    void unicast(PacketPtr p, LinkTxCallback done) override {
        send(std::move(p), std::move(done));
    }

    void broadcast(PacketPtr p) override { send(std::move(p), nullptr); }

private:
    void send(PacketPtr p, LinkTxCallback done) {
        const util::NodeId src = p->link_src;
        // awake, not alive: an asleep node's pending timers may still try
        // to transmit, but its radio is off.
        if (!world_.awake(src) || src >= world_.macs_.size() ||
            world_.macs_[src] == nullptr) {
            if (done) {
                done(false);
            }
            return;
        }
        world_.metrics().count("net." + packet_category(*p) + ".tx");
        phy::Frame frame;
        frame.dst = p->link_dst == kBroadcast ? phy::kBroadcastId
                                              : p->link_dst;
        frame.bytes = p->size_bytes();
        frame.trace = p->trace;
        frame.payload = std::static_pointer_cast<const void>(p);
        world_.macs_[src]->send(std::move(frame), std::move(done));
    }

    World& world_;
};

World::World(WorldParams params)
    : params_(params), rng_(params.seed) {
    geom::RggParams rgg{params_.n, params_.range, params_.avg_degree,
                        geom::Metric::kPlane};
    side_ = rgg.side();
    grid_ = std::make_unique<geom::SpatialGrid>(side_, params_.range);

    // Place nodes; optionally resample until the topology is connected.
    for (int attempt = 0;; ++attempt) {
        positions_.clear();
        for (std::size_t i = 0; i < params_.n; ++i) {
            positions_.push_back(geom::Vec2{rng_.uniform(0.0, side_),
                                            rng_.uniform(0.0, side_)});
        }
        if (!params_.ensure_connected ||
            build_unit_disk_graph(positions_, params_.range, side_)
                .is_connected()) {
            break;
        }
        if (attempt > 100) {
            throw std::runtime_error(
                "World: could not find a connected placement; raise "
                "avg_degree");
        }
    }
    alive_.assign(params_.n, true);
    asleep_.assign(params_.n, false);
    initial_population_ = params_.n;
    for (util::NodeId id = 0; id < params_.n; ++id) {
        grid_->insert(id, positions_[id]);
    }

    if (params_.energy.enabled) {
        sim::EnergyHooks hooks;
        hooks.sleep_one = [this](util::NodeId id) { sleep_node(id); };
        hooks.wake_one = [this](util::NodeId id) { wake_node(id); };
        hooks.deplete_one = [this](util::NodeId id) { on_depletion(id); };
        hooks.population = [this] { return node_count(); };
        hooks.alive = [this](util::NodeId id) { return alive(id); };
        energy_ = std::make_unique<sim::EnergyModel>(
            simulator_, params_.energy, std::move(hooks), rng_.fork());
    }

    if (params_.mobile) {
        if (params_.waypoint.lazy) {
            lazy_mobility_ = true;
            motion_.resize(params_.n);
            mobility_ = std::make_unique<mobility::LazyRandomWaypoint>(
                params_.waypoint);
        } else {
            mobility_ =
                std::make_unique<mobility::RandomWaypoint>(params_.waypoint);
        }
    } else {
        mobility_ = mobility::make_static_mobility();
    }

    if (params_.fidelity == Fidelity::kFull) {
        channel_ = std::make_unique<phy::Channel>(
            simulator_, *this, params_.propagation, params_.thresholds);
        link_ = std::make_unique<MacLink>(*this);
    } else {
        link_ = std::make_unique<AbstractLink>(*this, params_.abstract_link);
    }

    for (util::NodeId id = 0; id < params_.n; ++id) {
        create_node_internals(id);
    }
}

World::~World() {
    // Arena objects need their destructors run by hand, in the same
    // relative order the old unique_ptr members produced: MACs first
    // (while the channel is still alive), then radios, then stacks (the
    // simulator, arena and pool outlive all of them by declaration order).
    for (mac::CsmaMac* mac : macs_) {
        util::Arena::destroy(mac);
    }
    for (phy::Radio* radio : radios_) {
        util::Arena::destroy(radio);
    }
    for (NodeStack* stack : stacks_) {
        util::Arena::destroy(stack);
    }
}

void World::create_node_internals(util::NodeId id) {
    if (params_.fidelity == Fidelity::kFull) {
        radios_.resize(std::max<std::size_t>(radios_.size(), id + 1));
        macs_.resize(std::max<std::size_t>(macs_.size(), id + 1));
        radios_[id] = arena_.create<phy::Radio>(params_.thresholds);
        macs_[id] = arena_.create<mac::CsmaMac>(
            id, simulator_, *channel_, *radios_[id], params_.mac,
            rng_.fork());
        channel_->attach(id, radios_[id]);
        macs_[id]->set_rx_handler([this, id](const phy::Frame& frame) {
            deliver(id, std::static_pointer_cast<const Packet>(frame.payload));
        });
        macs_[id]->set_promiscuous_handler(
            [this, id](const phy::Frame& frame) {
                overhear(id, std::static_pointer_cast<const Packet>(
                                 frame.payload));
            });
        if (energy_) {
            macs_[id]->set_tx_airtime_listener([this, id](double seconds) {
                energy_->charge_tx_seconds(id, seconds);
            });
            radios_[id]->set_energy_listener(
                [this, id](const phy::Frame& frame) {
                    const bool slow_rate =
                        frame.is_ack || frame.dst == phy::kBroadcastId;
                    const double bps = slow_rate ? params_.mac.broadcast_bps
                                                 : params_.mac.unicast_bps;
                    const double seconds =
                        sim::to_seconds(params_.mac.preamble) +
                        static_cast<double>(frame.bytes) * 8.0 / bps;
                    energy_->charge_rx_seconds(id, seconds);
                });
        }
    }
    stacks_.resize(std::max<std::size_t>(stacks_.size(), id + 1));
    stacks_[id] = arena_.create<NodeStack>(*this, id, rng_.fork());
}

std::vector<util::NodeId> World::alive_nodes() const {
    ++alive_snapshots_;
    std::vector<util::NodeId> out;
    out.reserve(alive_.count());
    alive_.for_each([&out](util::NodeId id) { out.push_back(id); });
    return out;
}

bool World::alive(util::NodeId id) const { return alive_.test(id); }

// pqs-hot: consulted on every delivery/overhear; two bit tests.
bool World::awake(util::NodeId id) const {
    return alive_.test(id) && !asleep_.test(id);
}

void World::sleep_node(util::NodeId id) {
    if (!alive(id) || asleep_.test(id)) {
        return;
    }
    // The node stays in the grid: it is physically present (a neighbor
    // for membership views and route caches that will now silently fail)
    // — only its radio is off.
    asleep_.set(id);
    stacks_[id]->suspend();
}

bool World::wake_node(util::NodeId id) {
    // Refusing dead nodes is load-bearing: a wake timer scheduled before
    // a mid-sleep battery depletion (or crash) must not resurrect the
    // node — that is revive_node's job, with its spawn-listener refire.
    if (!alive(id) || !asleep_.test(id)) {
        return false;
    }
    asleep_.reset(id);
    stacks_[id]->resume();
    return true;
}

geom::Vec2 World::position(util::NodeId id) const {
    if (lazy_mobility_) {
        const MotionState& m = motion_.at(id);
        if (m.moving) {
            const sim::Time t = std::min(simulator_.now(), m.t_end);
            const double dt = sim::to_seconds(t - m.t0);
            return geom::Vec2{m.origin.x + m.velocity.x * dt,
                              m.origin.y + m.velocity.y * dt};
        }
    }
    return positions_.at(id);
}

void World::set_position(util::NodeId id, geom::Vec2 pos) {
    if (lazy_mobility_) {
        end_motion(id);  // an explicit position overrides any leg in flight
    }
    positions_.at(id) = pos;
    if (alive(id)) {
        grid_->move(id, pos);
    }
}

void World::end_motion(util::NodeId id) {
    MotionState& m = motion_.at(id);
    m.moving = false;
    ++m.epoch;
}

sim::Time World::begin_leg(util::NodeId id, geom::Vec2 target, double speed) {
    PQS_DCHECK(lazy_mobility_, "begin_leg requires waypoint.lazy mode");
    MotionState& m = motion_.at(id);
    ++m.epoch;  // orphan crossings from the previous leg
    const geom::Vec2 from = positions_.at(id);
    const geom::Vec2 delta = target - from;
    const double dist = delta.norm();
    if (dist <= 1e-12 || speed <= 0.0) {
        m.moving = false;
        return 0;
    }
    m.origin = from;
    m.velocity = delta * (speed / dist);
    m.t0 = simulator_.now();
    m.t_end = m.t0 + static_cast<sim::Time>(std::ceil(
                         dist / speed * static_cast<double>(sim::kSecond)));
    m.moving = true;
    schedule_crossing(id);
    return m.t_end - m.t0;
}

void World::schedule_crossing(util::NodeId id) {
    const MotionState& m = motion_[id];
    const sim::Time now = simulator_.now();
    if (!m.moving || now >= m.t_end) {
        return;
    }
    const geom::Vec2 pos = position(id);
    const double cell = grid_->cell_size();
    const double vs[2] = {m.velocity.x, m.velocity.y};
    const double ps[2] = {pos.x, pos.y};
    double dt = std::numeric_limits<double>::infinity();
    for (int axis = 0; axis < 2; ++axis) {
        const double v = vs[axis];
        if (std::abs(v) < 1e-12) {
            continue;
        }
        const double rel = ps[axis] / cell;
        const double boundary = v > 0.0 ? (std::floor(rel) + 1.0) * cell
                                        : (std::ceil(rel) - 1.0) * cell;
        double d = (boundary - ps[axis]) / v;
        if (d < 1e-9) {  // sitting on the boundary: take the next one
            d += cell / std::abs(v);
        }
        dt = std::min(dt, d);
    }
    if (!std::isfinite(dt)) {
        return;
    }
    // +1 ns lands strictly past the boundary, so the cell re-derived from
    // the exact position is the new one.
    const sim::Time delay =
        static_cast<sim::Time>(dt * static_cast<double>(sim::kSecond)) + 1;
    if (now + delay >= m.t_end) {
        return;  // the arrival commit performs the final cell move
    }
    const std::uint32_t epoch = m.epoch;
    // pqs-lint: fire-and-forget(epoch check orphans crossing events from a
    // node's previous leg/life; World outlives the event queue it drains)
    simulator_.schedule_in(delay, [this, id, epoch] {
        const MotionState& s = motion_[id];
        if (epoch != s.epoch || !s.moving || !alive(id)) {
            return;
        }
        grid_->move(id, position(id));
        schedule_crossing(id);
    });
}

void World::nodes_within(geom::Vec2 center, double radius,
                         std::vector<util::NodeId>& out,
                         util::NodeId exclude) const {
    if (!lazy_mobility_) {
        grid_->query(center, radius, out, exclude);
        return;
    }
    // Cell membership is exact in lazy mode but the grid's stored
    // positions may be stale; take cell candidates and distance-test them
    // against the closed-form positions.
    query_scratch_.clear();
    grid_->query_cells(center, radius, query_scratch_, exclude);
    const double r2 = radius * radius;
    for (const util::NodeId id : query_scratch_) {
        const geom::Vec2 d = position(id) - center;
        if (d.x * d.x + d.y * d.y <= r2) {
            out.push_back(id);
        }
    }
}

std::vector<util::NodeId> World::physical_neighbors(util::NodeId id) const {
    ++alive_snapshots_;
    std::vector<util::NodeId> out;
    nodes_within(position(id), params_.range, out, id);
    return out;
}

geom::Graph World::snapshot_graph() const {
    geom::Graph g(node_count());
    std::vector<util::NodeId> near;
    for (util::NodeId v = 0; v < node_count(); ++v) {
        if (!alive(v)) {
            continue;
        }
        near.clear();
        nodes_within(position(v), params_.range, near, v);
        for (const util::NodeId u : near) {
            if (u > v) {
                g.add_edge(v, u);
            }
        }
    }
    return g;
}

NodeStack& World::stack(util::NodeId id) { return *stacks_.at(id); }

void World::start() {
    if (started_) {
        throw std::logic_error("World::start called twice");
    }
    started_ = true;
    for (util::NodeId id = 0; id < node_count(); ++id) {
        if (alive(id)) {
            stacks_[id]->start();
            mobility_->start_node(*this, id, rng_);
        }
    }
    if (energy_) {
        energy_->start();
    }
}

void World::on_depletion(util::NodeId id) {
    fail_node(id);
    const double now_s = sim::to_seconds(simulator_.now());
    if (half_depletion_s_ < 0.0 && energy_ &&
        energy_->depletions() * 2 >= initial_population_) {
        half_depletion_s_ = now_s;
    }
    if (first_partition_s_ < 0.0 && !alive_subgraph_connected()) {
        first_partition_s_ = now_s;
    }
}

bool World::alive_subgraph_connected() const {
    // BFS over the alive unit-disk graph; dead nodes are skipped rather
    // than treated as isolated vertices. Only runs on depletion events.
    const std::size_t alive_n = alive_.count();
    if (alive_n <= 1) {
        return false;  // an empty or single-node network is partitioned
    }
    util::NodeId seed_node = alive_.select(0);
    std::vector<char> seen(node_count(), 0);
    std::vector<util::NodeId> frontier{seed_node};
    seen[seed_node] = 1;
    std::size_t reached = 1;
    std::vector<util::NodeId> near;
    while (!frontier.empty()) {
        const util::NodeId v = frontier.back();
        frontier.pop_back();
        near.clear();
        nodes_within(position(v), params_.range, near, v);
        for (const util::NodeId u : near) {
            if (!seen[u] && alive(u)) {
                seen[u] = 1;
                ++reached;
                frontier.push_back(u);
            }
        }
    }
    return reached == alive_n;
}

void World::fail_node(util::NodeId id) {
    if (!alive(id)) {
        return;
    }
    if (lazy_mobility_) {
        positions_.at(id) = position(id);  // freeze the exact point
        end_motion(id);
    }
    alive_.reset(id);
    asleep_.reset(id);  // dead overrides asleep
    grid_->remove(id);
    stacks_[id]->shutdown();
    if (params_.fidelity == Fidelity::kFull) {
        macs_[id]->shutdown();
        channel_->detach(id);
    }
    link_->on_node_failed(id);
    if (energy_) {
        energy_->on_node_failed(id);
    }
}

bool World::revive_node(util::NodeId id) {
    if (id >= alive_.size() || alive_.test(id) ||
        params_.fidelity == Fidelity::kFull) {
        return false;
    }
    alive_.set(id);
    grid_->insert(id, positions_[id]);
    link_->on_node_spawned(id);
    if (started_) {
        stacks_[id]->start();
        mobility_->start_node(*this, id, rng_);
    }
    for (const auto& listener : spawn_listeners_) {
        listener(id);
    }
    return true;
}

util::NodeId World::spawn_node() {
    const auto id = static_cast<util::NodeId>(positions_.size());
    positions_.push_back(
        geom::Vec2{rng_.uniform(0.0, side_), rng_.uniform(0.0, side_)});
    alive_.push_back(true);
    asleep_.push_back(false);
    if (lazy_mobility_) {
        motion_.resize(positions_.size());
    }
    grid_->insert(id, positions_[id]);
    create_node_internals(id);
    link_->on_node_spawned(id);
    if (started_) {
        stacks_[id]->start();
        mobility_->start_node(*this, id, rng_);
    }
    for (const auto& listener : spawn_listeners_) {
        listener(id);
    }
    return id;
}

void World::deliver(util::NodeId to, PacketPtr p) {
    // awake, not alive: sleeping nodes miss quorum probes — they neither
    // receive nor acknowledge, though they keep their stored values.
    if (!awake(to)) {
        return;
    }
    stacks_[to]->on_receive(std::move(p));
}

void World::overhear(util::NodeId listener, PacketPtr p) {
    if (!awake(listener)) {
        return;
    }
    stacks_[listener]->on_overhear(p);
}

std::shared_ptr<Packet> World::new_packet() {
    return std::allocate_shared<Packet>(
        util::PoolAllocator<Packet>{&packet_pool_});
}

std::shared_ptr<Packet> World::clone_packet(const Packet& original) {
    return std::allocate_shared<Packet>(
        util::PoolAllocator<Packet>{&packet_pool_}, original);
}

}  // namespace pqs::net
