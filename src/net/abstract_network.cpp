#include "net/abstract_network.h"

#include "geom/vec2.h"
#include "net/world.h"

namespace pqs::net {

AbstractLink::AbstractLink(World& world, AbstractLinkParams params)
    : world_(world), params_(params), rng_(world.rng().fork()) {}

sim::Time AbstractLink::hop_delay() {
    return params_.delay_min +
           static_cast<sim::Time>(rng_.uniform_u64(static_cast<std::uint64_t>(
               params_.delay_max - params_.delay_min + 1)));
}

AbstractLink::IdList AbstractLink::acquire_ids() {
    if (id_pool_.empty()) {
        return std::make_unique<std::vector<util::NodeId>>();
    }
    IdList ids = std::move(id_pool_.back());
    id_pool_.pop_back();
    ids->clear();
    return ids;
}

void AbstractLink::release_ids(IdList ids) {
    id_pool_.push_back(std::move(ids));
}

// pqs-hot: per-message fan-out; every quorum access funnels through here.
void AbstractLink::unicast(PacketPtr p, LinkTxCallback done) {
    world_.metrics().count("net." + packet_category(*p) + ".tx");
    const util::NodeId from = p->link_src;
    const util::NodeId to = p->link_dst;
    const sim::Time delay = hop_delay();
    // An asleep sender's radio is off: its pending timers may still call
    // unicast, but nothing goes on the air (and nothing is charged).
    if (world_.awake(from)) {
        world_.charge_tx_bytes(from, p->size_bytes());
    }

    if (params_.promiscuous && world_.awake(from)) {
        // Everyone in radio range of the sender hears the transmission.
        // Snapshot into a recycled buffer — same grid query (and counter
        // trace) as physical_neighbors, minus the per-call vector.
        IdList listeners = acquire_ids();
        world_.nodes_within(world_.position(from), world_.range(),
                            *listeners, from);
        // pqs-lint: fire-and-forget(in-flight overhear delivery; the link
        // is World-owned and the body re-checks listener liveness)
        world_.simulator().schedule_in(
            delay,
            [this, p, to, listeners = std::move(listeners)]() mutable {
                for (const util::NodeId listener : *listeners) {
                    // awake, not alive: sleeping radios overhear nothing.
                    if (listener != to && world_.awake(listener)) {
                        world_.charge_rx_bytes(listener, p->size_bytes());
                        world_.overhear(listener, p);
                    }
                }
                release_ids(std::move(listeners));
            });
    }

    // pqs-lint: fire-and-forget(in-flight frame; deliverability and node
    // liveness are re-evaluated at delivery time, per the airtime model)
    world_.simulator().schedule_in(delay, [this, p, from, to,
                                           done = std::move(done)]() mutable {
        // Evaluate deliverability at delivery time: mobility, failures or
        // sleep transitions during the airtime window count against the
        // hop (an asleep receiver misses the probe and sends no ack, so
        // the sender sees the same failure as a crash). Injected faults
        // draw randomness only while armed, so fault-free runs keep their
        // exact RNG stream (golden fingerprints).
        bool reachable =
            world_.awake(from) && world_.awake(to) &&
            geom::distance(world_.position(from), world_.position(to)) <=
                world_.range() &&
            !rng_.bernoulli(params_.unicast_loss);
        if (reachable && faults_.drop > 0.0 && rng_.bernoulli(faults_.drop)) {
            reachable = false;
        }
        if (reachable) {
            world_.charge_rx_bytes(to, p->size_bytes());
            world_.deliver(to, p);
            if (faults_.duplicate > 0.0 &&
                rng_.bernoulli(faults_.duplicate)) {
                inject_duplicate(p, to);
            }
            if (done) {
                done(true);
            }
        } else if (done) {
            // The MAC burns its retry budget before reporting failure.
            // pqs-lint: fire-and-forget(failure callback owns its state by
            // value; nothing it touches can die before it fires)
            world_.simulator().schedule_in(
                params_.failure_detect,
                [done = std::move(done)] { done(false); });
        }
    });
}

// pqs-hot: hello heartbeats and RREQ floods all land here — at n=100k
// this is the single busiest function in the abstract stack.
void AbstractLink::broadcast(PacketPtr p) {
    world_.metrics().count("net." + packet_category(*p) + ".tx");
    const util::NodeId from = p->link_src;
    if (!world_.awake(from)) {
        return;
    }
    world_.charge_tx_bytes(from, p->size_bytes());
    const sim::Time delay = hop_delay();
    // Snapshot receivers at send time (into a recycled buffer); they must
    // still be in range and alive at delivery time.
    IdList receivers = acquire_ids();
    world_.nodes_within(world_.position(from), world_.range(), *receivers,
                        from);
    // pqs-lint: fire-and-forget(in-flight broadcast; receivers are
    // re-validated alive-and-in-range at delivery time)
    world_.simulator().schedule_in(
        delay,
        [this, p, from, receivers = std::move(receivers)]() mutable {
            if (!world_.awake(from)) {
                release_ids(std::move(receivers));
                return;
            }
            for (const util::NodeId to : *receivers) {
                if (world_.awake(to) &&
                    geom::distance(world_.position(from),
                                   world_.position(to)) <= world_.range() &&
                    !rng_.bernoulli(params_.broadcast_loss)) {
                    if (faults_.drop > 0.0 &&
                        rng_.bernoulli(faults_.drop)) {
                        continue;
                    }
                    world_.charge_rx_bytes(to, p->size_bytes());
                    world_.deliver(to, p);
                    if (faults_.duplicate > 0.0 &&
                        rng_.bernoulli(faults_.duplicate)) {
                        inject_duplicate(p, to);
                    }
                }
            }
            release_ids(std::move(receivers));
        });
}

void AbstractLink::inject_duplicate(const PacketPtr& p, util::NodeId to) {
    // The duplicate trails the original by one extra hop delay and must
    // still find the receiver alive — a node that crashed in between
    // swallows it.
    // pqs-lint: fire-and-forget(injected duplicate; the body re-checks the
    // receiver is still alive, and the link is World-owned for the run)
    world_.simulator().schedule_in(hop_delay(), [this, p, to] {
        if (world_.awake(to)) {
            world_.charge_rx_bytes(to, p->size_bytes());
            world_.deliver(to, p);
        }
    });
}

}  // namespace pqs::net
