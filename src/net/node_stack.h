// Per-node protocol stack: heartbeat neighbor discovery, AODV, and the
// one-hop / multihop send primitives that the quorum access strategies in
// src/core are written against.
#pragma once

#include <functional>
#include <vector>

#include "net/aodv.h"
#include "net/link.h"
#include "net/neighbor.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"

namespace pqs::net {

class World;

struct RouteSendOptions {
    // >= 0 caps AODV discovery to this ring TTL (scoped local repair).
    int max_discovery_ttl = -1;
};

class NodeStack {
public:
    NodeStack(World& world, util::NodeId id, util::Rng rng);

    // A stack destroyed while its heartbeat is pending (teardown with
    // live nodes, container reallocation) would leave the simulator a
    // callback into freed memory; shutdown() cancels the timer.
    ~NodeStack() { shutdown(); }

    util::NodeId id() const { return id_; }
    World& world() { return world_; }
    util::Rng& rng() { return rng_; }
    Aodv& aodv() { return aodv_; }

    // Schedules the heartbeat loop (jittered within the first cycle).
    // Callable again after shutdown() — a warm restart on node revival.
    void start();

    // --- one-hop primitives ---
    // Unicast an application message to a (presumed) neighbor. `done`
    // reports MAC ack/failure — the cross-layer notification of §6.2.
    void send_unicast(util::NodeId to, AppMsgPtr msg, LinkTxCallback done);
    // One-hop application broadcast (the building block of FLOODING).
    void send_broadcast(AppMsgPtr msg);

    // --- multihop ---
    using RoutedCallback = std::function<void(bool delivered)>;
    void send_routed(util::NodeId dst, AppMsgPtr msg, RoutedCallback done,
                     RouteSendOptions opts = {});

    // Current one-hop neighbors: the hello-driven table (possibly stale
    // under mobility) or ground truth when the world uses oracle neighbors.
    std::vector<util::NodeId> neighbors() const;
    bool is_neighbor(util::NodeId id) const;

    // Application upcall: (previous hop, network source, message). Several
    // protocols can coexist on one node; each handler returns true iff it
    // consumed the message.
    using AppHandler = std::function<bool(util::NodeId prev_hop,
                                          util::NodeId net_src,
                                          const AppMsgPtr& msg)>;
    void add_app_handler(AppHandler handler) {
        app_handlers_.push_back(std::move(handler));
    }

    // Cross-layer snoop on data packets this node merely *forwards*
    // (RANDOM-OPT, §4.5). Returning true consumes the packet — it is not
    // forwarded further.
    using SnoopHandler = std::function<bool(const Packet& packet)>;
    void add_snoop_handler(SnoopHandler handler) {
        snoop_handlers_.push_back(std::move(handler));
    }

    // Promiscuous overhearing (§7.2): invoked for packets this node heard
    // on the air but that were not addressed to it. Requires the world to
    // run with promiscuous delivery enabled.
    using OverhearHandler = std::function<void(const Packet& packet)>;
    void add_overhear_handler(OverhearHandler handler) {
        overhear_handlers_.push_back(std::move(handler));
    }
    // Called by the link layer.
    void on_overhear(const PacketPtr& p);

    // Called by World on packet arrival.
    void on_receive(PacketPtr p);

    // Node failure: stops heartbeats and drops pending work.
    void shutdown();
    bool running() const { return running_; }

    // Duty-cycle sleep: pauses the heartbeat loop but — unlike
    // shutdown() — keeps every installed app/snoop/overhear handler, so
    // the node wakes with its protocol state (and stored values) intact.
    // No spawn listeners fire on resume(); services must not reinstall
    // handlers for a node that merely slept.
    void suspend();
    void resume();
    bool suspended() const { return suspended_; }

    // Used by Aodv (and strategies) to emit link packets.
    void link_unicast(PacketPtr p, LinkTxCallback done);
    void link_broadcast(PacketPtr p);

private:
    void heartbeat();
    void deliver_local(util::NodeId prev_hop, util::NodeId net_src,
                       const AppMsgPtr& msg);

    World& world_;
    util::NodeId id_;
    util::Rng rng_;
    NeighborTable neighbor_table_;
    Aodv aodv_;
    std::vector<AppHandler> app_handlers_;
    std::vector<SnoopHandler> snoop_handlers_;
    std::vector<OverhearHandler> overhear_handlers_;
    bool running_ = false;
    bool suspended_ = false;
    // Pending heartbeat event, cancelled on shutdown so a revived node's
    // restart() can't race a stale [this] callback from its previous life.
    sim::EventId heartbeat_timer_ = sim::kInvalidEvent;
};

}  // namespace pqs::net
