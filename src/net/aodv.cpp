#include "net/aodv.h"

#include <algorithm>

#include "net/node_stack.h"
#include "net/world.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pqs::net {

namespace {
std::uint64_t rreq_key(util::NodeId origin, std::uint32_t rreq_id) {
    return (static_cast<std::uint64_t>(origin) << 32) | rreq_id;
}

// Sequence-number comparison (no wraparound handling; runs are short).
bool seq_newer(util::SeqNum a, util::SeqNum b) { return a > b; }
}  // namespace

Aodv::Aodv(NodeStack& stack, AodvParams params)
    : stack_(stack), params_(params) {}

bool Aodv::route_usable(const Route& route) const {
    return route.valid && route.expiry > stack_.world().simulator().now();
}

void Aodv::touch_route(Route& route) {
    // Active routes stay alive (RFC 3561 ACTIVE_ROUTE_TIMEOUT semantics):
    // every use pushes the expiry out.
    route.expiry = stack_.world().simulator().now() + params_.route_lifetime;
}

bool Aodv::has_valid_route(util::NodeId dst) const {
    const auto it = routes_.find(dst);
    return it != routes_.end() && route_usable(it->second);
}

std::size_t Aodv::valid_route_count() const {
    std::size_t count = 0;
    for (const auto& [dst, route] : routes_) {
        if (route_usable(route)) {
            ++count;
        }
    }
    return count;
}

std::uint16_t Aodv::route_hops(util::NodeId dst) const {
    const auto it = routes_.find(dst);
    return it != routes_.end() && route_usable(it->second) ? it->second.hops
                                                           : 0;
}

void Aodv::install_route(util::NodeId dst, util::NodeId next_hop,
                         std::uint16_t hops, util::SeqNum seq,
                         bool seq_known) {
    if (dst == stack_.id()) {
        return;
    }
    Route& route = routes_[dst];
    // Prefer fresher sequence numbers; among equal freshness prefer fewer
    // hops; always replace an invalid route.
    const bool replace = !route_usable(route) ||
                         (seq_known && !route.seq_known) ||
                         (seq_known && route.seq_known &&
                          seq_newer(seq, route.seq)) ||
                         (seq_known == route.seq_known && seq == route.seq &&
                          hops < route.hops);
    if (!replace) {
        return;
    }
    route.next_hop = next_hop;
    route.hops = hops;
    route.seq = seq;
    route.seq_known = seq_known;
    route.valid = true;
    route.expiry = stack_.world().simulator().now() + params_.route_lifetime;
}

void Aodv::send_data(util::NodeId dst, AppMsgPtr msg,
                     std::shared_ptr<DeliveryTracker> tracker,
                     int max_discovery_ttl, std::uint8_t repairs) {
    if (has_valid_route(dst)) {
        transmit_data(dst, std::move(msg), std::move(tracker), repairs);
        return;
    }
    const obs::TraceId trace = msg ? msg->trace : 0;
    auto [it, inserted] = pending_.try_emplace(dst);
    it->second.queue.push_back(
        QueuedData{std::move(msg), std::move(tracker), repairs});
    if (inserted) {
        obs::record(trace, obs::EventKind::kRouteDiscovery, stack_.id(), dst);
        start_discovery(dst, max_discovery_ttl);
    }
}

void Aodv::transmit_data(util::NodeId dst, AppMsgPtr msg,
                         std::shared_ptr<DeliveryTracker> tracker,
                         std::uint8_t repairs) {
    const auto it = routes_.find(dst);
    if (it == routes_.end() || !route_usable(it->second)) {
        obs::record(msg ? msg->trace : 0, obs::EventKind::kPacketDrop,
                    stack_.id(), dst);
        if (tracker) {
            tracker->resolve(false);
        }
        return;
    }
    touch_route(it->second);
    const util::NodeId next_hop = it->second.next_hop;
    auto packet = stack_.world().new_packet();
    packet->link_src = stack_.id();
    packet->link_dst = next_hop;
    packet->trace = msg ? msg->trace : 0;
    packet->body = DataBody{stack_.id(), dst, std::move(msg), tracker,
                            repairs};
    PacketPtr p = packet;
    stack_.link_unicast(p, [this, dst, next_hop, p](bool ok) {
        if (ok) {
            return;
        }
        // Cross-layer notification: the hop is gone. Invalidate every
        // route through it and tell the neighborhood (§6.2).
        handle_broken_link(next_hop);
        const DataBody& data = p->data();
        if (data.repairs_left > 0) {
            // Rediscover and retry (RFC 3561 §6.12 repair at the source).
            send_data(dst, data.app, data.tracker, -1,
                      static_cast<std::uint8_t>(data.repairs_left - 1));
            return;
        }
        obs::record(p->trace, obs::EventKind::kPacketDrop, stack_.id(),
                    next_hop);
        if (data.tracker) {
            data.tracker->resolve(false);
        }
    });
}

void Aodv::forward_data(PacketPtr p) {
    const DataBody& data = p->data();
    const util::NodeId dst = data.net_dst;
    if (p->ttl <= 1) {
        obs::record(p->trace, obs::EventKind::kPacketDrop, stack_.id(), dst);
        if (data.tracker) {
            data.tracker->resolve(false);
        }
        return;
    }
    const auto it = routes_.find(dst);
    if (it == routes_.end() || !route_usable(it->second)) {
        // No route at an intermediate node: warn the neighborhood, then
        // try a local repair (rediscover from here) if budget remains.
        RerrBody rerr;
        rerr.unreachable.emplace_back(
            dst, it == routes_.end() ? 0 : it->second.seq);
        auto out = stack_.world().new_packet();
        out->link_src = stack_.id();
        out->link_dst = kBroadcast;
        out->ttl = 1;
        out->body = std::move(rerr);
        stack_.link_broadcast(std::move(out));
        if (data.repairs_left > 0) {
            send_data(dst, data.app, data.tracker, -1,
                      static_cast<std::uint8_t>(data.repairs_left - 1));
        } else {
            obs::record(p->trace, obs::EventKind::kPacketDrop, stack_.id(),
                        dst);
            if (data.tracker) {
                data.tracker->resolve(false);
            }
        }
        return;
    }
    touch_route(it->second);
    const util::NodeId next_hop = it->second.next_hop;
    auto fwd = stack_.world().clone_packet(*p);
    fwd->link_src = stack_.id();
    fwd->link_dst = next_hop;
    fwd->ttl = p->ttl - 1;
    PacketPtr fwd_const = fwd;
    stack_.link_unicast(fwd_const, [this, dst, next_hop,
                                    fwd_const](bool ok) {
        if (ok) {
            return;
        }
        handle_broken_link(next_hop);
        const DataBody& broken = fwd_const->data();
        if (broken.repairs_left > 0) {
            // Local repair (RFC 3561 §6.12): this node rediscovers the
            // destination and resumes forwarding the packet itself.
            send_data(dst, broken.app, broken.tracker, -1,
                      static_cast<std::uint8_t>(broken.repairs_left - 1));
            return;
        }
        obs::record(fwd_const->trace, obs::EventKind::kPacketDrop,
                    stack_.id(), next_hop);
        if (broken.tracker) {
            broken.tracker->resolve(false);
        }
    });
}

void Aodv::handle_broken_link(util::NodeId next_hop) {
    RerrBody rerr;
    for (auto& [dst, route] : routes_) {
        if (route.valid && route.next_hop == next_hop) {
            route.valid = false;
            rerr.unreachable.emplace_back(dst, route.seq);
        }
    }
    if (rerr.unreachable.empty()) {
        return;
    }
    auto p = stack_.world().new_packet();
    p->link_src = stack_.id();
    p->link_dst = kBroadcast;
    p->ttl = 1;
    p->body = std::move(rerr);
    stack_.link_broadcast(std::move(p));
}

void Aodv::start_discovery(util::NodeId dst, int max_ttl) {
    Discovery& d = pending_[dst];
    d.max_ttl = max_ttl;
    d.retries_left = max_ttl >= 0 ? 0 : params_.rreq_retries;
    d.ttl = params_.ttl_start;
    if (max_ttl >= 0) {
        d.ttl = std::min(d.ttl, max_ttl);
    }
    broadcast_rreq(dst, d.ttl);
}

void Aodv::broadcast_rreq(util::NodeId dst, int ttl) {
    RreqBody rreq;
    rreq.origin = stack_.id();
    rreq.target = dst;
    rreq.origin_seq = ++my_seq_;
    rreq.rreq_id = next_rreq_id_++;
    const auto it = routes_.find(dst);
    if (it != routes_.end() && it->second.seq_known) {
        rreq.target_seq = it->second.seq;
        rreq.target_seq_unknown = false;
    }
    rreq_seen_.insert(rreq_key(rreq.origin, rreq.rreq_id));

    auto p = stack_.world().new_packet();
    p->link_src = stack_.id();
    p->link_dst = kBroadcast;
    p->ttl = ttl;
    p->body = rreq;
    stack_.link_broadcast(std::move(p));

    Discovery& d = pending_[dst];
    const sim::Time wait =
        2 * static_cast<sim::Time>(ttl) * params_.node_traversal_time;
    d.timer = stack_.world().simulator().schedule_in(
        wait, [this, dst] { discovery_timeout(dst); });
}

void Aodv::discovery_timeout(util::NodeId dst) {
    const auto it = pending_.find(dst);
    if (it == pending_.end()) {
        return;
    }
    if (has_valid_route(dst)) {
        discovery_succeeded(dst);
        return;
    }
    Discovery& d = it->second;
    int next_ttl = d.ttl;
    if (d.ttl < params_.ttl_threshold) {
        next_ttl = d.ttl + params_.ttl_increment;
    } else if (d.ttl < params_.net_diameter) {
        next_ttl = params_.net_diameter;
    } else if (d.retries_left > 0) {
        --d.retries_left;
        next_ttl = params_.net_diameter;
    } else {
        discovery_failed(dst);
        return;
    }
    if (d.max_ttl >= 0 && next_ttl > d.max_ttl) {
        // Scoped search: never expand beyond the cap.
        if (d.ttl >= d.max_ttl) {
            discovery_failed(dst);
            return;
        }
        next_ttl = d.max_ttl;
    }
    d.ttl = next_ttl;
    broadcast_rreq(dst, d.ttl);
}

void Aodv::discovery_succeeded(util::NodeId dst) {
    const auto it = pending_.find(dst);
    if (it == pending_.end()) {
        return;
    }
    Discovery d = std::move(it->second);
    if (d.timer != sim::kInvalidEvent) {
        stack_.world().simulator().cancel(d.timer);
    }
    pending_.erase(it);
    for (auto& queued : d.queue) {
        transmit_data(dst, std::move(queued.msg), std::move(queued.tracker),
                      queued.repairs);
    }
}

void Aodv::discovery_failed(util::NodeId dst) {
    const auto it = pending_.find(dst);
    if (it == pending_.end()) {
        return;
    }
    Discovery d = std::move(it->second);
    if (d.timer != sim::kInvalidEvent) {
        stack_.world().simulator().cancel(d.timer);
    }
    pending_.erase(it);
    PQS_DEBUG("aodv: node " << stack_.id() << " failed discovery of " << dst);
    for (auto& queued : d.queue) {
        obs::record(queued.msg ? queued.msg->trace : 0,
                    obs::EventKind::kPacketDrop, stack_.id(), dst);
        if (queued.tracker) {
            queued.tracker->resolve(false);
        }
    }
}

void Aodv::on_rreq(util::NodeId from, const RreqBody& body, int ttl) {
    if (body.origin == stack_.id()) {
        return;
    }
    if (!rreq_seen_.insert(rreq_key(body.origin, body.rreq_id)).second) {
        return;  // duplicate
    }
    // Reverse route to the origin through the neighbor we heard this from.
    install_route(body.origin, from,
                  static_cast<std::uint16_t>(body.hop_count + 1),
                  body.origin_seq, /*seq_known=*/true);

    if (body.target == stack_.id()) {
        my_seq_ = std::max(my_seq_, body.target_seq);
        RrepBody rrep;
        rrep.origin = body.origin;
        rrep.target = stack_.id();
        rrep.target_seq = ++my_seq_;
        rrep.hop_count = 0;
        send_rrep_towards(body.origin, rrep);
        return;
    }
    // Intermediate reply when we have a fresh-enough route — with enough
    // remaining lifetime that the data following the RREP will still find
    // it usable here.
    const auto it = routes_.find(body.target);
    const sim::Time min_remaining = 10 * params_.node_traversal_time;
    if (it != routes_.end() && route_usable(it->second) &&
        it->second.expiry - stack_.world().simulator().now() > min_remaining &&
        it->second.seq_known &&
        (body.target_seq_unknown || !seq_newer(body.target_seq,
                                               it->second.seq))) {
        RrepBody rrep;
        rrep.origin = body.origin;
        rrep.target = body.target;
        rrep.target_seq = it->second.seq;
        rrep.hop_count = it->second.hops;
        send_rrep_towards(body.origin, rrep);
        return;
    }
    if (ttl <= 1) {
        return;
    }
    RreqBody fwd = body;
    fwd.hop_count = static_cast<std::uint16_t>(body.hop_count + 1);
    auto p = stack_.world().new_packet();
    p->link_src = stack_.id();
    p->link_dst = kBroadcast;
    p->ttl = ttl - 1;
    p->body = fwd;
    // Forwarding jitter desynchronizes neighbor rebroadcasts (RFC 5148).
    const sim::Time jitter = static_cast<sim::Time>(stack_.rng().uniform_u64(
        static_cast<std::uint64_t>(params_.rreq_jitter) + 1));
    // pqs-lint: fire-and-forget(Aodv lives inside the arena-placed
    // NodeStack for the whole run; the body re-checks running() first)
    stack_.world().simulator().schedule_in(jitter, [this, p] {
        if (stack_.running()) {
            stack_.link_broadcast(p);
        }
    });
}

void Aodv::send_rrep_towards(util::NodeId origin, const RrepBody& body) {
    const auto it = routes_.find(origin);
    if (it == routes_.end() || !route_usable(it->second)) {
        return;  // reverse route evaporated; the origin will retry
    }
    const util::NodeId next_hop = it->second.next_hop;
    auto p = stack_.world().new_packet();
    p->link_src = stack_.id();
    p->link_dst = next_hop;
    p->ttl = params_.net_diameter;
    p->body = body;
    PacketPtr pc = p;
    stack_.link_unicast(pc, [this, next_hop](bool ok) {
        if (!ok) {
            handle_broken_link(next_hop);
        }
    });
}

void Aodv::on_rrep(util::NodeId from, const RrepBody& body) {
    // Forward route to the target through the RREP sender.
    install_route(body.target, from,
                  static_cast<std::uint16_t>(body.hop_count + 1),
                  body.target_seq, /*seq_known=*/true);
    if (body.origin == stack_.id()) {
        discovery_succeeded(body.target);
        return;
    }
    RrepBody fwd = body;
    fwd.hop_count = static_cast<std::uint16_t>(body.hop_count + 1);
    send_rrep_towards(body.origin, fwd);
}

void Aodv::on_rerr(util::NodeId from, const RerrBody& body) {
    RerrBody propagated;
    for (const auto& [dst, seq] : body.unreachable) {
        const auto it = routes_.find(dst);
        if (it != routes_.end() && it->second.valid &&
            it->second.next_hop == from) {
            it->second.valid = false;
            propagated.unreachable.emplace_back(dst, seq);
        }
    }
    if (propagated.unreachable.empty()) {
        return;
    }
    auto p = stack_.world().new_packet();
    p->link_src = stack_.id();
    p->link_dst = kBroadcast;
    p->ttl = 1;
    p->body = std::move(propagated);
    stack_.link_broadcast(std::move(p));
}

}  // namespace pqs::net
