// One-hop link abstraction implemented at two fidelity levels:
//  - AbstractLink (net/abstract_network.h): unit-disk delivery with
//    configurable latency/loss; fast enough for 800-node parameter sweeps.
//  - MacLink (net/world.cpp): the full PHY (SINR) + CSMA/CA MAC stack.
// Both report unicast success/failure the way an 802.11 MAC does (ack
// received vs. retries exhausted), which upper layers use for the paper's
// cross-layer adaptation techniques.
#pragma once

#include <functional>

#include "net/packet.h"
#include "util/ids.h"

namespace pqs::net {

using LinkTxCallback = std::function<void(bool success)>;

class LinkLayer {
public:
    virtual ~LinkLayer() = default;

    // One-hop unicast to p->link_dst. `done(true)` once the hop is
    // MAC-acknowledged, `done(false)` after retry exhaustion.
    virtual void unicast(PacketPtr p, LinkTxCallback done) = 0;

    // One-hop broadcast; unacknowledged.
    virtual void broadcast(PacketPtr p) = 0;

    virtual void on_node_failed(util::NodeId) {}
    virtual void on_node_spawned(util::NodeId) {}
};

}  // namespace pqs::net
