// One-hop link abstraction implemented at two fidelity levels:
//  - AbstractLink (net/abstract_network.h): unit-disk delivery with
//    configurable latency/loss; fast enough for 800-node parameter sweeps.
//  - MacLink (net/world.cpp): the full PHY (SINR) + CSMA/CA MAC stack.
// Both report unicast success/failure the way an 802.11 MAC does (ack
// received vs. retries exhausted), which upper layers use for the paper's
// cross-layer adaptation techniques.
#pragma once

#include <functional>

#include "net/packet.h"
#include "util/ids.h"

namespace pqs::net {

using LinkTxCallback = std::function<void(bool success)>;

// Runtime link-fault injection (the live-churn experiments): an extra
// per-delivery drop probability on top of the configured residual loss,
// and a probability that a delivered packet arrives twice (the duplicate
// is delayed by one extra hop delay). Set/cleared at phase boundaries by
// the scenario driver; both default to benign.
struct LinkFaults {
    double drop = 0.0;
    double duplicate = 0.0;

    bool active() const { return drop > 0.0 || duplicate > 0.0; }
};

class LinkLayer {
public:
    virtual ~LinkLayer() = default;

    // One-hop unicast to p->link_dst. `done(true)` once the hop is
    // MAC-acknowledged, `done(false)` after retry exhaustion.
    virtual void unicast(PacketPtr p, LinkTxCallback done) = 0;

    // One-hop broadcast; unacknowledged.
    virtual void broadcast(PacketPtr p) = 0;

    virtual void on_node_failed(util::NodeId) {}
    virtual void on_node_spawned(util::NodeId) {}

    // Installs runtime fault injection. AbstractLink honors it; the full
    // MAC stack ignores it (its losses come from the SINR channel).
    void set_fault_injection(const LinkFaults& faults) { faults_ = faults; }
    const LinkFaults& fault_injection() const { return faults_; }

protected:
    LinkFaults faults_;
};

}  // namespace pqs::net
