// Heartbeat-based neighbor discovery (§2.3): every node broadcasts a hello
// each heartbeat cycle; entries expire after `expiry_factor` cycles without
// a hello. Under mobility the table is intentionally stale between beats —
// the paper's RW-salvation technique exists precisely to cope with that.
#pragma once

#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace pqs::net {

class NeighborTable {
public:
    NeighborTable(sim::Time heartbeat, double expiry_factor = 2.5)
        : expiry_(static_cast<sim::Time>(
              static_cast<double>(heartbeat) * expiry_factor)) {}

    void on_hello(util::NodeId from, sim::Time now) {
        last_heard_[from] = now;
    }

    void remove(util::NodeId id) { last_heard_.erase(id); }

    bool is_neighbor(util::NodeId id, sim::Time now) const {
        const auto it = last_heard_.find(id);
        return it != last_heard_.end() && now - it->second <= expiry_;
    }

    std::vector<util::NodeId> neighbors(sim::Time now) const {
        std::vector<util::NodeId> out;
        out.reserve(last_heard_.size());
        for (const auto& [id, heard] : last_heard_) {
            if (now - heard <= expiry_) {
                out.push_back(id);
            }
        }
        return out;
    }

    std::size_t size() const { return last_heard_.size(); }

private:
    sim::Time expiry_;
    std::unordered_map<util::NodeId, sim::Time> last_heard_;
};

}  // namespace pqs::net
