// 802.11-DCF-style CSMA/CA MAC (one instance per node).
//
// Timing constants follow the paper's Fig. 2: 20 µs slots, 50 µs DIFS,
// 11 Mbps unicast / 2 Mbps broadcast with a 192 µs PLCP preamble+header.
// Unicast frames are acknowledged after SIFS and retried up to `max_retries`
// (default 7) with binary-exponential backoff; exhausting the retries
// reports failure to the caller — the cross-layer notification that the
// paper's RW-salvation and reply-path-repair techniques rely on (§6.2).
//
// Simplification vs. real DCF: instead of freezing the backoff counter
// while the medium is busy, a busy medium at the end of the deferral redraws
// the backoff. This keeps arbitration fair and collision behaviour realistic
// while avoiding per-slot events; documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace pqs::mac {

struct MacParams {
    sim::Time slot = 20 * sim::kMicrosecond;
    sim::Time sifs = 10 * sim::kMicrosecond;
    sim::Time difs = 50 * sim::kMicrosecond;
    sim::Time preamble = 192 * sim::kMicrosecond;
    double unicast_bps = 11e6;
    double broadcast_bps = 2e6;
    std::size_t ack_bytes = 14;
    int cw_min = 31;
    int cw_max = 1023;
    int max_retries = 7;
};

// Outcome of a send: true iff broadcast completed or unicast was acked.
using TxCallback = std::function<void(bool success)>;
// Received data frames (dedup'd, acked) are passed up with the sender id.
using MacRxHandler = std::function<void(const phy::Frame&)>;

class CsmaMac {
public:
    CsmaMac(util::NodeId self, sim::Simulator& simulator, phy::Channel& channel,
            phy::Radio& radio, MacParams params, util::Rng rng);

    // A MAC destroyed with the ack timeout pending would leave the
    // simulator holding a callback into freed memory; shutdown() cancels
    // it (and invalidates the generation the backoff timers check).
    ~CsmaMac() { shutdown(); }

    // Queues a frame. dst == phy::kBroadcastId broadcasts (no ack, no retry).
    void send(phy::Frame frame, TxCallback done);

    void set_rx_handler(MacRxHandler handler) { rx_ = std::move(handler); }

    // Frames decoded in promiscuous mode: data frames addressed to another
    // node that this radio could nevertheless decode (§7.2 overhearing).
    void set_promiscuous_handler(MacRxHandler handler) {
        promiscuous_ = std::move(handler);
    }

    // Airtime this MAC spends transmitting (data frames and acks),
    // reported as it is committed to the channel; the energy model
    // charges it at the tx power draw. Null by default — an unset
    // listener costs one pointer test per transmission.
    using TxAirtimeListener = std::function<void(double seconds)>;
    void set_tx_airtime_listener(TxAirtimeListener listener) {
        tx_airtime_ = std::move(listener);
    }

    // Drops all queued frames (node failure); pending callbacks are not
    // invoked — the node is gone.
    void shutdown();
    bool idle() const { return !busy_ && queue_.empty(); }

    std::uint64_t tx_attempts() const { return tx_attempts_; }
    std::uint64_t tx_failures() const { return tx_failures_; }

private:
    struct Pending {
        phy::Frame frame;
        TxCallback done;
        int retries = 0;
        int cw;
    };

    sim::Time frame_duration(std::size_t bytes, bool broadcast) const;
    void kick();
    void attempt();
    void transmit_head();
    void on_tx_done();
    void ack_timeout();
    void finish_head(bool success);
    void on_radio_frame(const phy::Frame& frame);
    void send_ack(util::NodeId to, std::uint32_t mac_seq);

    util::NodeId self_;
    sim::Simulator& simulator_;
    phy::Channel& channel_;
    phy::Radio& radio_;
    MacParams params_;
    util::Rng rng_;
    MacRxHandler rx_;
    MacRxHandler promiscuous_;
    TxAirtimeListener tx_airtime_;

    std::deque<Pending> queue_;
    bool busy_ = false;          // a send attempt is in progress
    bool alive_ = true;
    sim::EventId ack_timer_ = sim::kInvalidEvent;
    std::uint32_t next_seq_ = 1;
    std::uint64_t generation_ = 0;  // invalidates stale timers after shutdown

    // Duplicate filter: last mac_seq seen per sender.
    std::unordered_map<util::NodeId, std::uint32_t> last_seq_;

    std::uint64_t tx_attempts_ = 0;
    std::uint64_t tx_failures_ = 0;
};

}  // namespace pqs::mac
