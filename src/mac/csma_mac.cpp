#include "mac/csma_mac.h"

#include <algorithm>

#include "obs/trace.h"

namespace pqs::mac {

CsmaMac::CsmaMac(util::NodeId self, sim::Simulator& simulator,
                 phy::Channel& channel, phy::Radio& radio, MacParams params,
                 util::Rng rng)
    : self_(self),
      simulator_(simulator),
      channel_(channel),
      radio_(radio),
      params_(params),
      rng_(rng) {
    radio_.set_rx_handler(
        [this](const phy::Frame& frame, double) { on_radio_frame(frame); });
}

sim::Time CsmaMac::frame_duration(std::size_t bytes, bool broadcast) const {
    const double bps = broadcast ? params_.broadcast_bps : params_.unicast_bps;
    const double seconds = static_cast<double>(bytes) * 8.0 / bps;
    return params_.preamble + sim::from_seconds(seconds);
}

void CsmaMac::send(phy::Frame frame, TxCallback done) {
    if (!alive_) {
        return;
    }
    frame.src = self_;
    frame.mac_seq = next_seq_++;
    queue_.push_back(Pending{std::move(frame), std::move(done), 0,
                             params_.cw_min});
    kick();
}

void CsmaMac::shutdown() {
    alive_ = false;
    ++generation_;
    queue_.clear();
    busy_ = false;
    if (ack_timer_ != sim::kInvalidEvent) {
        simulator_.cancel(ack_timer_);
        ack_timer_ = sim::kInvalidEvent;
    }
}

void CsmaMac::kick() {
    if (!busy_ && !queue_.empty()) {
        busy_ = true;
        attempt();
    }
}

void CsmaMac::attempt() {
    // DIFS plus a uniform backoff in [0, cw] slots; if the medium is busy at
    // the end of the deferral we redraw (see header for the simplification).
    const Pending& head = queue_.front();
    obs::record(head.frame.trace, obs::EventKind::kMacBackoff, self_,
                static_cast<std::uint64_t>(head.cw));
    const sim::Time defer =
        params_.difs +
        params_.slot * static_cast<sim::Time>(
                           rng_.index(static_cast<std::size_t>(head.cw) + 1));
    const std::uint64_t gen = generation_;
    // pqs-lint: fire-and-forget(generation check orphans the backoff after
    // shutdown(), which the destructor runs; stale timers become no-ops)
    simulator_.schedule_in(defer, [this, gen] {
        if (gen != generation_ || !busy_) {
            return;
        }
        if (radio_.carrier_busy()) {
            attempt();
        } else {
            transmit_head();
        }
    });
}

void CsmaMac::transmit_head() {
    Pending& head = queue_.front();
    const bool broadcast = head.frame.dst == phy::kBroadcastId;
    const sim::Time duration = frame_duration(head.frame.bytes, broadcast);
    head.frame.frame_id = channel_.next_frame_id();
    ++tx_attempts_;
    obs::record(head.frame.trace, obs::EventKind::kMacTx, self_,
                head.frame.bytes);
    channel_.transmit(self_, head.frame, duration);
    if (tx_airtime_) {
        tx_airtime_(sim::to_seconds(duration));
    }
    const std::uint64_t gen = generation_;
    // pqs-lint: fire-and-forget(generation check orphans the tx-done event
    // after shutdown(), which the destructor runs; stale timers are no-ops)
    simulator_.schedule_in(duration, [this, gen] {
        if (gen == generation_) {
            on_tx_done();
        }
    });
}

void CsmaMac::on_tx_done() {
    if (queue_.empty()) {
        return;
    }
    const Pending& head = queue_.front();
    if (head.frame.dst == phy::kBroadcastId) {
        finish_head(true);
        return;
    }
    // Wait for the ack: SIFS + ack airtime + small guard.
    const sim::Time ack_air = frame_duration(params_.ack_bytes, true);
    const sim::Time timeout = params_.sifs + ack_air + 50 * sim::kMicrosecond;
    const std::uint64_t gen = generation_;
    ack_timer_ = simulator_.schedule_in(timeout, [this, gen] {
        if (gen == generation_) {
            ack_timer_ = sim::kInvalidEvent;
            ack_timeout();
        }
    });
}

void CsmaMac::ack_timeout() {
    if (queue_.empty()) {
        return;
    }
    Pending& head = queue_.front();
    ++head.retries;
    if (head.retries > params_.max_retries) {
        ++tx_failures_;
        obs::record(head.frame.trace, obs::EventKind::kMacDrop, self_,
                    head.frame.dst);
        finish_head(false);
        return;
    }
    head.cw = std::min(head.cw * 2 + 1, params_.cw_max);
    attempt();
}

void CsmaMac::finish_head(bool success) {
    Pending head = std::move(queue_.front());
    queue_.pop_front();
    busy_ = false;
    if (head.done) {
        head.done(success);
    }
    kick();
}

void CsmaMac::send_ack(util::NodeId to, std::uint32_t mac_seq) {
    phy::Frame ack;
    ack.src = self_;
    ack.dst = to;
    ack.bytes = params_.ack_bytes;
    ack.is_ack = true;
    ack.mac_seq = mac_seq;
    ack.frame_id = channel_.next_frame_id();
    const sim::Time duration = frame_duration(params_.ack_bytes, true);
    const std::uint64_t gen = generation_;
    // Acks go out after SIFS without contention (they win over DIFS waits).
    // pqs-lint: fire-and-forget(generation check orphans the ack after
    // shutdown(), which the destructor runs; stale timers are no-ops)
    simulator_.schedule_in(params_.sifs, [this, gen, ack, duration] {
        if (gen == generation_) {
            channel_.transmit(self_, ack, duration);
            if (tx_airtime_) {
                tx_airtime_(sim::to_seconds(duration));
            }
        }
    });
}

void CsmaMac::on_radio_frame(const phy::Frame& frame) {
    if (!alive_) {
        return;
    }
    if (frame.is_ack) {
        if (frame.dst != self_ || !busy_ || queue_.empty()) {
            return;
        }
        const Pending& head = queue_.front();
        if (head.frame.dst == frame.src && head.frame.mac_seq == frame.mac_seq &&
            ack_timer_ != sim::kInvalidEvent) {
            simulator_.cancel(ack_timer_);
            ack_timer_ = sim::kInvalidEvent;
            finish_head(true);
        }
        return;
    }
    if (frame.dst == self_) {
        // Ack even duplicates: the sender may have missed the previous ack.
        send_ack(frame.src, frame.mac_seq);
        const auto it = last_seq_.find(frame.src);
        if (it != last_seq_.end() && it->second == frame.mac_seq) {
            return;  // duplicate delivery suppressed
        }
        last_seq_[frame.src] = frame.mac_seq;
        if (rx_) {
            rx_(frame);
        }
        return;
    }
    if (frame.dst == phy::kBroadcastId && frame.src != self_) {
        if (rx_) {
            rx_(frame);
        }
        return;
    }
    // Unicast addressed to someone else: promiscuous listeners still see it.
    if (promiscuous_) {
        promiscuous_(frame);
    }
}

}  // namespace pqs::mac
