// Liveness bitset with rank/select: the SoA replacement for the world's
// `std::vector<bool> alive_` + materialized `alive_nodes()` snapshots.
//
// select(r) returns the r-th alive id in ascending order, which is by
// construction the element `alive_nodes()[r]` of the old sorted snapshot
// vector — so every caller that drew `alive[rng.index(alive.size())]`
// can draw `select(rng.index(count()))` and consume the exact same RNG
// stream with the exact same result, keeping golden fingerprints
// bit-identical while the O(n) copy disappears.
//
// Layout: 64-bit words plus a per-block (8 words = 512 bits) popcount.
// select scans blocks, then words, then bits: O(n/512) worst case, a few
// cache lines in practice, and O(1) amortized for the uniform draws the
// simulator performs. set/reset maintain the block counts in O(1).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/ids.h"

namespace pqs::util {

class AliveSet {
public:
    AliveSet() = default;
    explicit AliveSet(std::size_t n, bool value = false) { assign(n, value); }

    void assign(std::size_t n, bool value) {
        size_ = n;
        words_.assign((n + 63) / 64, value ? ~0ull : 0ull);
        if (value && n % 64 != 0) {
            words_.back() = (1ull << (n % 64)) - 1;
        }
        blocks_.assign((words_.size() + kWordsPerBlock - 1) / kWordsPerBlock,
                       0);
        count_ = 0;
        for (std::size_t w = 0; w < words_.size(); ++w) {
            const auto bits = static_cast<std::uint32_t>(
                std::popcount(words_[w]));
            blocks_[w / kWordsPerBlock] += bits;
            count_ += bits;
        }
    }

    // Appends one id (the next dense NodeId) with the given liveness.
    void push_back(bool value) {
        const std::size_t id = size_++;
        if (id / 64 >= words_.size()) {
            words_.push_back(0);
            if (words_.size() > blocks_.size() * kWordsPerBlock) {
                blocks_.push_back(0);
            }
        }
        if (value) {
            set(static_cast<NodeId>(id));
        }
    }

    std::size_t size() const { return size_; }
    std::size_t count() const { return count_; }

    bool test(NodeId id) const {
        return id < size_ && (words_[id / 64] >> (id % 64)) & 1u;
    }

    void set(NodeId id) {
        PQS_DCHECK(id < size_, "AliveSet::set out of range");
        const std::uint64_t mask = 1ull << (id % 64);
        if (!(words_[id / 64] & mask)) {
            words_[id / 64] |= mask;
            ++blocks_[id / 64 / kWordsPerBlock];
            ++count_;
        }
    }

    void reset(NodeId id) {
        PQS_DCHECK(id < size_, "AliveSet::reset out of range");
        const std::uint64_t mask = 1ull << (id % 64);
        if (words_[id / 64] & mask) {
            words_[id / 64] &= ~mask;
            --blocks_[id / 64 / kWordsPerBlock];
            --count_;
        }
    }

    // The `rank`-th set id in ascending order; rank < count() required.
    NodeId select(std::size_t rank) const {
        PQS_DCHECK(rank < count_, "AliveSet::select rank out of range");
        std::size_t block = 0;
        while (rank >= blocks_[block]) {
            rank -= blocks_[block];
            ++block;
        }
        std::size_t w = block * kWordsPerBlock;
        for (;; ++w) {
            const auto bits =
                static_cast<std::size_t>(std::popcount(words_[w]));
            if (rank < bits) {
                break;
            }
            rank -= bits;
        }
        std::uint64_t word = words_[w];
        for (std::size_t i = 0; i < rank; ++i) {
            word &= word - 1;  // clear lowest set bit
        }
        return static_cast<NodeId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(word)));
    }

    // Calls fn(id) for every set id in ascending order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word != 0) {
                const auto bit =
                    static_cast<std::size_t>(std::countr_zero(word));
                fn(static_cast<NodeId>(w * 64 + bit));
                word &= word - 1;
            }
        }
    }

private:
    static constexpr std::size_t kWordsPerBlock = 8;  // 512-bit blocks

    std::vector<std::uint64_t> words_;
    std::vector<std::uint32_t> blocks_;  // popcount per block
    std::size_t size_ = 0;
    std::size_t count_ = 0;
};

}  // namespace pqs::util
