// Minimal CSV writer for exporting bench series (set PQS_CSV_DIR to a
// directory and every figure bench also dumps its data points as CSV, one
// file per series, ready for plotting).
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pqs::util {

// Directory configured via PQS_CSV_DIR; empty means "export disabled".
inline std::string csv_dir_from_env() {
    const char* env = std::getenv("PQS_CSV_DIR");
    return env ? env : "";
}

class CsvWriter {
public:
    // Disabled (all writes are no-ops) when dir is empty.
    CsvWriter(const std::string& dir, const std::string& name,
              const std::vector<std::string>& columns) {
        if (dir.empty()) {
            return;
        }
        std::filesystem::create_directories(dir);
        out_.open(std::filesystem::path(dir) / (name + ".csv"));
        if (!out_) {
            return;
        }
        enabled_ = true;
        for (std::size_t i = 0; i < columns.size(); ++i) {
            out_ << (i ? "," : "") << columns[i];
        }
        out_ << '\n';
    }

    bool enabled() const { return enabled_; }

    void row(const std::vector<double>& values) {
        if (!enabled_) {
            return;
        }
        for (std::size_t i = 0; i < values.size(); ++i) {
            out_ << (i ? "," : "") << format(values[i]);
        }
        out_ << '\n';
        out_.flush();
    }

private:
    static std::string format(double v) {
        std::ostringstream s;
        s << v;
        return s.str();
    }

    std::ofstream out_;
    bool enabled_ = false;
};

}  // namespace pqs::util
