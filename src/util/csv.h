// Minimal CSV writer for exporting bench series (set PQS_CSV_DIR to a
// directory and every figure bench also dumps its data points as CSV, one
// file per series, ready for plotting).
//
// Thread safety: direct row() calls are serialized by a mutex, and a trial
// running on a worker thread can instead collect its rows into a local
// RowBuffer and commit() the whole block at once, so rows belonging to one
// trial are never interleaved with another trial's. Deterministic output
// (independent of thread count) additionally requires committing buffers
// in a fixed order — the experiment runner does this by writing rows from
// the main thread after all trials have joined.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace pqs::util {

// Directory configured via PQS_CSV_DIR; empty means "export disabled".
inline std::string csv_dir_from_env() {
    const char* env = std::getenv("PQS_CSV_DIR");
    return env ? env : "";
}

class CsvWriter {
public:
    // Rows accumulated locally (e.g. by one trial on a worker thread) and
    // appended to the file as one atomic block via CsvWriter::commit().
    class RowBuffer {
    public:
        void row(const std::vector<double>& values) {
            for (std::size_t i = 0; i < values.size(); ++i) {
                data_ += (i ? "," : "");
                data_ += format(values[i]);
            }
            data_ += '\n';
        }
        bool empty() const { return data_.empty(); }

    private:
        friend class CsvWriter;
        std::string data_;
    };

    // Disabled (all writes are no-ops) when dir is empty.
    CsvWriter(const std::string& dir, const std::string& name,
              const std::vector<std::string>& columns) {
        if (dir.empty()) {
            return;
        }
        std::filesystem::create_directories(dir);
        out_.open(std::filesystem::path(dir) / (name + ".csv"));
        if (!out_) {
            return;
        }
        enabled_ = true;
        for (std::size_t i = 0; i < columns.size(); ++i) {
            out_ << (i ? "," : "") << columns[i];
        }
        out_ << '\n';
    }

    bool enabled() const { return enabled_; }

    void row(const std::vector<double>& values) {
        if (!enabled_) {
            return;
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < values.size(); ++i) {
            out_ << (i ? "," : "") << format(values[i]);
        }
        out_ << '\n';
        out_.flush();
    }

    // Appends all of `buffer`'s rows contiguously.
    void commit(const RowBuffer& buffer) {
        if (!enabled_ || buffer.empty()) {
            return;
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        out_ << buffer.data_;
        out_.flush();
    }

private:
    static std::string format(double v) {
        std::ostringstream s;
        s << v;
        return s.str();
    }

    std::mutex mutex_;
    // Written by row()/commit() from any trial thread; the header write in
    // the constructor is exempt (no concurrent access can exist yet).
    std::ofstream out_ PQS_GUARDED_BY(mutex_);
    bool enabled_ = false;  // set once in the constructor, then read-only
};

}  // namespace pqs::util
