#include "util/kernel_stats.h"

#include <cstddef>

namespace pqs::util {

const KernelStatsField* kernel_stats_fields(std::size_t* count) {
    static const KernelStatsField fields[] = {
#define PQS_KERNEL_STATS_FIELD(field) \
    KernelStatsField{#field,          \
                     [](const KernelStats& s) { return s.field; }},
        PQS_KERNEL_STATS_FIELDS(PQS_KERNEL_STATS_FIELD)
#undef PQS_KERNEL_STATS_FIELD
    };
    *count = sizeof(fields) / sizeof(fields[0]);
    return fields;
}

void report_kernel_stats(const KernelStats& stats, const char* label,
                         std::FILE* stream) {
    std::fprintf(stream, "[perf] kernel %s:", label);
    std::size_t count = 0;
    const KernelStatsField* fields = kernel_stats_fields(&count);
    for (std::size_t i = 0; i < count; ++i) {
        std::fprintf(stream, " %s=%llu", fields[i].name,
                     static_cast<unsigned long long>(fields[i].get(stats)));
    }
    std::fprintf(stream, "\n");
}

}  // namespace pqs::util
