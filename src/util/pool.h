// Fixed-size block recycler for the simulation's per-hop heap objects
// (packets and their shared_ptr control blocks). Every Packet in a trial
// is the same size, so std::allocate_shared through PoolAllocator always
// requests one block of one size class — the pool serves it from a free
// list of previously released blocks, falling back to ::operator new only
// to grow. Blocks of any *other* size (rebound allocator internals,
// oversized one-offs) pass straight through to the heap and are counted,
// so a surprise allocation shows up in KernelStats instead of silently
// eroding the "pooled" claim.
//
// Pools are deliberately per-World, never thread_local: per-trial counters
// must depend only on the trial's seed, not on which worker thread ran it
// (PQS_THREADS bit-identity). The pool must outlive every shared_ptr
// allocated from it — World declares it before the simulator so queued
// events holding PacketPtrs die first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace pqs::util {

class BlockPool {
public:
    BlockPool() = default;
    BlockPool(const BlockPool&) = delete;
    BlockPool& operator=(const BlockPool&) = delete;
    ~BlockPool() {
        for (void* block : free_) {
            ::operator delete(block);
        }
    }

    void* acquire(std::size_t bytes) {
        if (block_size_ == 0) {
            block_size_ = bytes;
        }
        if (bytes != block_size_) {
            ++misfit_allocs_;
            return ::operator new(bytes);
        }
        if (!free_.empty()) {
            void* block = free_.back();
            free_.pop_back();
            ++reuses_;
            return block;
        }
        ++fresh_allocs_;
        return ::operator new(bytes);
    }

    void release(std::size_t bytes, void* block) {
        if (bytes == block_size_) {
            free_.push_back(block);
        } else {
            ::operator delete(block);
        }
    }

    // Deterministic per-seed accounting (see util/kernel_stats.h).
    std::uint64_t fresh_allocs() const { return fresh_allocs_; }
    std::uint64_t reuses() const { return reuses_; }
    std::uint64_t misfit_allocs() const { return misfit_allocs_; }
    std::size_t free_blocks() const { return free_.size(); }
    std::size_t block_size() const { return block_size_; }

private:
    std::size_t block_size_ = 0;  // fixed by the first acquire
    std::vector<void*> free_;
    std::uint64_t fresh_allocs_ = 0;
    std::uint64_t reuses_ = 0;
    std::uint64_t misfit_allocs_ = 0;
};

// Minimal allocator over a BlockPool for std::allocate_shared: the
// control block and the object land in one recycled allocation. The pool
// reference must outlive every object allocated through it.
template <typename T>
class PoolAllocator {
public:
    using value_type = T;

    explicit PoolAllocator(BlockPool* pool) : pool_(pool) {}
    template <typename U>
    PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

    T* allocate(std::size_t n) {
        return static_cast<T*>(pool_->acquire(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) {
        pool_->release(n * sizeof(T), p);
    }

    BlockPool* pool() const { return pool_; }

    template <typename U>
    bool operator==(const PoolAllocator<U>& other) const {
        return pool_ == other.pool();
    }

private:
    BlockPool* pool_;
};

}  // namespace pqs::util
