// Thread-safety annotations checked by tools/pqs_lint (rule guarded-by).
//
// The macros expand to nothing — the container has no clang, so instead
// of clang's -Wthread-safety attributes the pqs_lint analyzer enforces
// them: a field marked PQS_GUARDED_BY(m) may only be touched while `m`
// is held (a lock_guard/scoped_lock/unique_lock in scope, a manual
// m.lock(), or a PQS_REQUIRES(m) contract on the enclosing function);
// calls to a PQS_REQUIRES(m) function are checked the same way.
// Constructors and destructors of the owning class are exempt (an object
// under construction or destruction is single-threaded by definition).
//
//   class Counter {
//       void bump() { std::lock_guard<std::mutex> lk(mu_); ++n_; }
//       void bump_locked() PQS_REQUIRES(mu_) { ++n_; }
//       std::mutex mu_;
//       long n_ PQS_GUARDED_BY(mu_) = 0;
//   };
#pragma once

#define PQS_GUARDED_BY(mutex)
#define PQS_REQUIRES(mutex)
