#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace pqs::util {

namespace {

// Funnel for the first exception thrown by any worker (later ones are
// dropped); the slot outlives the pool, and take() runs after join(), but
// store() races between workers, hence the guarded pointer.
class ErrorSlot {
public:
    void store(std::exception_ptr error) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!first_) {
            first_ = std::move(error);
        }
    }

    std::exception_ptr take() {
        const std::lock_guard<std::mutex> lock(mutex_);
        return first_;
    }

private:
    std::mutex mutex_;
    std::exception_ptr first_ PQS_GUARDED_BY(mutex_);
};

}  // namespace

std::size_t default_thread_count() {
    if (const char* env = std::getenv("PQS_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
    if (threads == 0) {
        threads = default_thread_count();
    }
    if (threads > count) {
        threads = count;
    }
    if (count == 0) {
        return;
    }
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            body(i);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    ErrorSlot errors;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) {
                return;
            }
            try {
                body(i);
            } catch (...) {
                errors.store(std::current_exception());
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (std::size_t t = 1; t < threads; ++t) {
        pool.emplace_back(worker);
    }
    worker();  // the caller is worker 0
    for (std::thread& t : pool) {
        t.join();
    }
    if (std::exception_ptr first = errors.take()) {
        std::rethrow_exception(first);
    }
}

}  // namespace pqs::util
