#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pqs::util {

std::size_t default_thread_count() {
    if (const char* env = std::getenv("PQS_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
    if (threads == 0) {
        threads = default_thread_count();
    }
    if (threads > count) {
        threads = count;
    }
    if (count == 0) {
        return;
    }
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            body(i);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) {
                return;
            }
            try {
                body(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (std::size_t t = 1; t < threads; ++t) {
        pool.emplace_back(worker);
    }
    worker();  // the caller is worker 0
    for (std::thread& t : pool) {
        t.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

}  // namespace pqs::util
