#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pqs::util {

void Accumulator::add(double x) {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel-merge formulas.
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const {
    if (count_ == 0) {
        throw std::logic_error("Accumulator::mean on empty accumulator");
    }
    return mean_;
}

double Accumulator::variance() const {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
    if (count_ == 0) {
        throw std::logic_error("Accumulator::min on empty accumulator");
    }
    return min_;
}

double Accumulator::max() const {
    if (count_ == 0) {
        throw std::logic_error("Accumulator::max on empty accumulator");
    }
    return max_;
}

double Accumulator::ci95_halfwidth() const {
    if (count_ < 2) {
        return 0.0;
    }
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
    if (buckets == 0 || !(hi > lo)) {
        throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
    }
}

void Histogram::add(double x) {
    std::size_t b = 0;
    if (x >= hi_) {
        b = counts_.size() - 1;
    } else if (x > lo_) {
        b = static_cast<std::size_t>((x - lo_) / width_);
        b = std::min(b, counts_.size() - 1);
    }
    ++counts_[b];
    ++total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
    return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
    return bucket_lo(bucket) + width_;
}

double Histogram::quantile(double p) const {
    if (total_ == 0) {
        throw std::logic_error("Histogram::quantile on empty histogram");
    }
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(total_);
    double seen = 0.0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const double next = seen + static_cast<double>(counts_[b]);
        if (next >= target && counts_[b] > 0) {
            const double frac =
                (target - seen) / static_cast<double>(counts_[b]);
            return bucket_lo(b) + frac * width_;
        }
        seen = next;
    }
    return hi_;
}

void MetricSet::count(const std::string& name, double delta) {
    counters_[name] += delta;
}

void MetricSet::sample(const std::string& name, double value) {
    samples_[name].add(value);
}

double MetricSet::counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

const Accumulator* MetricSet::find(const std::string& name) const {
    const auto it = samples_.find(name);
    return it == samples_.end() ? nullptr : &it->second;
}

void MetricSet::merge(const MetricSet& other) {
    for (const auto& [name, value] : other.counters_) {
        counters_[name] += value;
    }
    for (const auto& [name, acc] : other.samples_) {
        samples_[name].merge(acc);
    }
}

void MetricSet::clear() {
    counters_.clear();
    samples_.clear();
}

}  // namespace pqs::util
