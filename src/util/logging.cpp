#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <utility>

#include "util/thread_annotations.h"

namespace pqs::util {

namespace {

std::atomic<LogLevel> g_level = [] {
    const char* env = std::getenv("PQS_LOG");
    return env ? parse_log_level(env) : LogLevel::kOff;
}();

std::mutex g_log_mutex;

// Every emitted line goes through this stream; worker threads log
// concurrently, so both the pointer and the stream it designates are
// serialized by g_log_mutex.
std::ostream* g_sink PQS_GUARDED_BY(g_log_mutex) = &std::clog;

// Per-thread virtual clock: each worker running a trial stamps its lines
// with its own simulator's time.
thread_local std::function<double()> t_clock;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
    g_level.store(level, std::memory_order_relaxed);
}

std::ostream* set_log_sink(std::ostream* sink) {
    const std::lock_guard<std::mutex> lock(g_log_mutex);
    std::ostream* previous = g_sink;
    g_sink = sink != nullptr ? sink : &std::clog;
    return previous;
}

LogLevel parse_log_level(const std::string& text) {
    if (text == "debug") return LogLevel::kDebug;
    if (text == "info") return LogLevel::kInfo;
    if (text == "warn") return LogLevel::kWarn;
    if (text == "error") return LogLevel::kError;
    return LogLevel::kOff;
}

ScopedLogClock::ScopedLogClock(std::function<double()> now_seconds)
    : previous_(std::move(t_clock)) {
    t_clock = std::move(now_seconds);
}

ScopedLogClock::~ScopedLogClock() { t_clock = std::move(previous_); }

namespace detail {

void emit(LogLevel level, const std::string& message) {
    char stamp[48];
    stamp[0] = '\0';
    if (t_clock) {
        std::snprintf(stamp, sizeof(stamp), " t=%.6fs", t_clock());
    }
    const std::lock_guard<std::mutex> lock(g_log_mutex);
    *g_sink << "[pqs:" << level_name(level) << stamp << "] " << message
            << '\n';
}

}  // namespace detail

}  // namespace pqs::util
