#include "util/logging.h"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace pqs::util {

namespace {

LogLevel g_level = [] {
    const char* env = std::getenv("PQS_LOG");
    return env ? parse_log_level(env) : LogLevel::kOff;
}();

std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

LogLevel parse_log_level(const std::string& text) {
    if (text == "debug") return LogLevel::kDebug;
    if (text == "info") return LogLevel::kInfo;
    if (text == "warn") return LogLevel::kWarn;
    if (text == "error") return LogLevel::kError;
    return LogLevel::kOff;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
    const std::lock_guard<std::mutex> lock(g_log_mutex);
    std::clog << "[pqs:" << level_name(level) << "] " << message << '\n';
}

}  // namespace detail

}  // namespace pqs::util
