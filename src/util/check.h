// Runtime invariant checks for the simulator.
//
// PQS_CHECK(cond, msg)  — always on; prints file:line plus the streamed
//                         message and aborts. For cheap invariants whose
//                         violation means the process state is garbage.
// PQS_DCHECK(cond, msg) — debug-only twin for checks too hot for release
//                         builds (per-event, per-edge). Compiled out (the
//                         condition is NOT evaluated) unless
//                         PQS_ENABLE_DCHECKS is 1.
//
// PQS_ENABLE_DCHECKS defaults to 1 in builds without NDEBUG (CMake Debug)
// and 0 otherwise; the PQS_DCHECKS CMake option or a per-target compile
// definition overrides it. Both macros abort via std::abort so they stay
// death-testable and cooperate with sanitizer reports (no exception
// unwinding through event-loop frames).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>

#ifndef PQS_ENABLE_DCHECKS
#ifdef NDEBUG
#define PQS_ENABLE_DCHECKS 0
#else
#define PQS_ENABLE_DCHECKS 1
#endif
#endif

namespace pqs::util {

// True when PQS_DCHECK statements in this translation unit are active.
inline constexpr bool kDchecksEnabled = PQS_ENABLE_DCHECKS != 0;

namespace detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* condition,
                                      const std::string& message) {
    std::fprintf(stderr, "[check] %s:%d: check failed: %s%s%s\n", file, line,
                 condition, message.empty() ? "" : " — ", message.c_str());
    std::fflush(stderr);
    std::abort();
}

}  // namespace detail
}  // namespace pqs::util

#define PQS_CHECK(cond, msg)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::ostringstream pqs_check_stream_;                         \
            pqs_check_stream_ << msg;                                     \
            ::pqs::util::detail::check_failed(__FILE__, __LINE__, #cond,  \
                                              pqs_check_stream_.str());   \
        }                                                                 \
    } while (false)

#if PQS_ENABLE_DCHECKS
#define PQS_DCHECK(cond, msg) PQS_CHECK(cond, msg)
#else
#define PQS_DCHECK(cond, msg) \
    do {                      \
    } while (false)
#endif
