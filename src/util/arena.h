// Per-trial bump arena: node-lifetime objects (protocol stacks, radios,
// MACs) are allocated once at world construction and all die together at
// world teardown, so they never need individual frees. The arena hands
// out pointers from large chunks with a bump cursor — no per-object
// malloc metadata, contiguous placement in creation order (NodeId order,
// which is also the dominant access order), and a high-water mark that
// the perf report can surface next to peak RSS.
//
// Destructors are NOT run by the arena: the owner placement-news objects
// via create<T>() and must call destroy() (or ~T explicitly) before the
// arena goes away. This keeps the arena free of per-object bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace pqs::util {

class Arena {
public:
    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
        : chunk_bytes_(chunk_bytes) {}
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    void* allocate(std::size_t bytes, std::size_t align) {
        // Align the actual pointer, not a byte offset: chunk bases carry
        // only the default operator-new alignment.
        auto p = reinterpret_cast<std::uintptr_t>(ptr_);
        auto aligned = (p + align - 1) & ~static_cast<std::uintptr_t>(
                                             align - 1);
        if (ptr_ == nullptr ||
            aligned + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
            new_chunk(bytes + align);
            p = reinterpret_cast<std::uintptr_t>(ptr_);
            aligned = (p + align - 1) & ~static_cast<std::uintptr_t>(
                                            align - 1);
        }
        used_ += (aligned - p) + bytes;
        high_water_ = used_ > high_water_ ? used_ : high_water_;
        ptr_ = reinterpret_cast<std::byte*>(aligned + bytes);
        return reinterpret_cast<void*>(aligned);
    }

    // Placement-new convenience; the caller owns destruction.
    template <typename T, typename... Args>
    T* create(Args&&... args) {
        void* mem = allocate(sizeof(T), alignof(T));
        return ::new (mem) T(std::forward<Args>(args)...);
    }

    template <typename T>
    static void destroy(T* object) {
        if (object != nullptr) {
            object->~T();
        }
    }

    // Bytes handed out (payload plus alignment padding, summed across all
    // chunks), and its maximum — deterministic for a fixed seed, unlike
    // RSS.
    std::size_t bytes_allocated() const { return used_; }
    std::size_t high_water() const { return high_water_; }

private:
    static constexpr std::size_t kDefaultChunkBytes = 1u << 20;  // 1 MiB

    void new_chunk(std::size_t min_bytes) {
        // Oversized requests get a dedicated chunk; normal ones start a
        // fresh default chunk (slack left in the old chunk is abandoned).
        const std::size_t size =
            min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
        chunks_.push_back(std::make_unique<std::byte[]>(size));
        ptr_ = chunks_.back().get();
        end_ = ptr_ + size;
    }

    std::size_t chunk_bytes_;
    std::vector<std::unique_ptr<std::byte[]>> chunks_;
    std::byte* ptr_ = nullptr;
    std::byte* end_ = nullptr;
    std::size_t used_ = 0;
    std::size_t high_water_ = 0;
};

}  // namespace pqs::util
