// Strongly typed identifiers shared across the stack.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace pqs::util {

// Index of a node in the simulated network. Dense, assigned at creation;
// never reused within a run (nodes that leave keep their id so that stale
// membership entries and in-flight packets can refer to them).
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// Key of a published data item in the location service.
using Key = std::uint64_t;

// Per-node monotonically increasing sequence numbers (quorum accesses,
// random-walk ids, AODV sequence numbers).
using SeqNum = std::uint32_t;

// Globally unique id of a quorum access / random walk: origin plus sequence.
struct AccessId {
    NodeId origin = kInvalidNode;
    SeqNum seq = 0;

    friend bool operator==(const AccessId&, const AccessId&) = default;
    friend auto operator<=>(const AccessId&, const AccessId&) = default;
};

}  // namespace pqs::util

template <>
struct std::hash<pqs::util::AccessId> {
    std::size_t operator()(const pqs::util::AccessId& id) const noexcept {
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(id.origin) << 32) | id.seq;
        // splitmix64-style finalizer.
        std::uint64_t z = packed + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(z ^ (z >> 31));
    }
};
