#include "util/mem.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pqs::util {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) {
        return 0;
    }
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
    return 0;
#endif
}

}  // namespace pqs::util
