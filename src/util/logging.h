// Minimal leveled logging. Disabled by default so simulation hot paths pay
// only a branch; enable with PQS_LOG=debug|info|warn|error in the
// environment or programmatically via set_log_level().
//
// Thread safety: the level is an atomic (parallel trials may tighten or
// relax it), and emission is serialized by a mutex so concurrent trials
// never interleave within a line. A trial that wants its lines stamped
// with virtual time installs a thread-local clock (ScopedLogClock); each
// worker thread sees only its own simulator's clock.
#pragma once

#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>

namespace pqs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
// Parses "debug"/"info"/"warn"/"error"/"off"; unknown strings mean kOff.
LogLevel parse_log_level(const std::string& text);

// Redirects emitted lines (default: std::clog) and returns the previous
// sink; the caller keeps `sink` alive until it is replaced again. Used by
// tests to capture output.
std::ostream* set_log_sink(std::ostream* sink);

// Installs a thread-local virtual clock (returning seconds) for the guard's
// lifetime; emitted lines gain a "t=<seconds>s" stamp. Nesting restores the
// previous clock on destruction.
class ScopedLogClock {
public:
    explicit ScopedLogClock(std::function<double()> now_seconds);
    ~ScopedLogClock();
    ScopedLogClock(const ScopedLogClock&) = delete;
    ScopedLogClock& operator=(const ScopedLogClock&) = delete;

private:
    std::function<double()> previous_;
};

namespace detail {
void emit(LogLevel level, const std::string& message);
}

// Stream-style log statement that only formats when the level is enabled:
//   PQS_LOG_AT(LogLevel::kInfo, "node " << id << " joined");
#define PQS_LOG_AT(level, expr)                                     \
    do {                                                            \
        if ((level) >= ::pqs::util::log_level()) {                  \
            std::ostringstream pqs_log_stream_;                     \
            pqs_log_stream_ << expr;                                \
            ::pqs::util::detail::emit((level), pqs_log_stream_.str()); \
        }                                                           \
    } while (false)

#define PQS_DEBUG(expr) PQS_LOG_AT(::pqs::util::LogLevel::kDebug, expr)
#define PQS_INFO(expr) PQS_LOG_AT(::pqs::util::LogLevel::kInfo, expr)
#define PQS_WARN(expr) PQS_LOG_AT(::pqs::util::LogLevel::kWarn, expr)
#define PQS_ERROR(expr) PQS_LOG_AT(::pqs::util::LogLevel::kError, expr)

}  // namespace pqs::util
