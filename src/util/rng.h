// Deterministic random number generation for simulations.
//
// Every run of the simulator derives all of its randomness from a single
// 64-bit seed, so experiments are reproducible bit-for-bit. The generator is
// xoshiro256++ (public domain, Blackman & Vigna), which is fast, has a 256-bit
// state and passes BigCrush; std::mt19937_64 would also work but is ~4x
// slower per call and has a much larger state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace pqs::util {

// xoshiro256++ engine satisfying std::uniform_random_bit_generator, so it can
// be plugged into <random> distributions when needed.
class Rng {
public:
    using result_type = std::uint64_t;

    // Seeds the full 256-bit state from a 64-bit seed via splitmix64, as
    // recommended by the xoshiro authors.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() { return next(); }

    // Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t uniform_u64(std::uint64_t bound);

    // Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    // Uniform size_t index in [0, n). n must be > 0.
    std::size_t index(std::size_t n) {
        return static_cast<std::size_t>(uniform_u64(n));
    }

    // Uniform double in [0, 1).
    double uniform01();

    // Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    bool bernoulli(double p);

    // Exponential variate with the given rate (mean 1/rate).
    double exponential(double rate);

    // Standard normal via Marsaglia polar method.
    double normal(double mean = 0.0, double stddev = 1.0);

    // A fresh child generator whose seed is derived from this generator's
    // stream. Used to give independent streams to per-node processes.
    Rng fork();

    // Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[index(i)]);
        }
    }

    // k distinct values sampled uniformly from [0, n) without replacement.
    // Requires k <= n. O(k) expected time via Floyd's algorithm.
    std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                        std::size_t k);

private:
    result_type next();

    std::array<std::uint64_t, 4> state_{};
    // Cached second normal variate from the polar method.
    bool has_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

// splitmix64 step; exposed for deriving sub-seeds deterministically
// (e.g. seed-per-node = splitmix64(run_seed ^ node_id)).
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace pqs::util
