// Streaming statistics used throughout the simulation study: per-metric
// accumulators, histograms, and multi-run summaries with confidence bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pqs::util {

// Welford-style streaming accumulator: mean/variance without storing samples.
class Accumulator {
public:
    void add(double x);
    void merge(const Accumulator& other);

    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double mean() const;
    double variance() const;  // sample variance (n-1 denominator)
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }
    // Half-width of an approximate 95% confidence interval for the mean
    // (normal approximation; fine for the run counts used in the benches).
    double ci95_halfwidth() const;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
// the first/last bucket so totals are preserved.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);
    std::size_t bucket_count() const { return counts_.size(); }
    std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
    std::size_t total() const { return total_; }
    double bucket_lo(std::size_t bucket) const;
    double bucket_hi(std::size_t bucket) const;
    // p in [0, 1]; linear interpolation within the quantile's bucket.
    double quantile(double p) const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

// Named metric registry: a scenario run records counters and samples here,
// benches aggregate across runs.
class MetricSet {
public:
    void count(const std::string& name, double delta = 1.0);
    void sample(const std::string& name, double value);

    double counter(const std::string& name) const;  // 0 if absent
    const Accumulator* find(const std::string& name) const;
    const std::map<std::string, double>& counters() const { return counters_; }
    const std::map<std::string, Accumulator>& samples() const {
        return samples_;
    }
    void merge(const MetricSet& other);
    void clear();

private:
    std::map<std::string, double> counters_;
    std::map<std::string, Accumulator> samples_;
};

}  // namespace pqs::util
