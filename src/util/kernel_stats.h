// Counter block threaded through the simulation kernel: the event queue
// (schedule/fire/cancel, heap ops, slab recycling), and the spatial grid
// (queries, candidate scans, moves). Every counter is driven purely by
// simulation behaviour, so for a fixed seed the whole block is
// deterministic — bench and regression harnesses assert on it verbatim,
// while wall-clock time stays a separate, informational measurement.
#pragma once

#include <cstdint>
#include <cstdio>

namespace pqs::util {

// X-macro over every counter; the single source of truth for merging,
// reporting and JSON export, so adding a counter here is all it takes.
#define PQS_KERNEL_STATS_FIELDS(X)                                        \
    X(events_scheduled)  /* EventQueue::schedule calls */                 \
    X(events_fired)      /* live events returned by pop() */             \
    X(events_cancelled)  /* successful cancel() calls */                 \
    X(heap_pushes)       /* heap insertions */                           \
    X(heap_pops)         /* heap root removals (live + stale) */         \
    X(heap_moves)        /* entry copies during sift up/down */          \
    X(stale_drops)       /* lazily-deleted (cancelled) entries skipped */ \
    X(slab_reuses)       /* event slots recycled from the free list */   \
    X(callback_heap_allocs) /* callbacks too large for inline storage */ \
    X(calendar_pushes)   /* far-future events parked in the calendar */  \
    X(calendar_migrations) /* calendar entries promoted into the heap */ \
    X(grid_queries)      /* SpatialGrid::query calls */                  \
    X(grid_candidates)   /* nodes distance-tested by queries */          \
    X(grid_moves)        /* SpatialGrid::move calls */                   \
    X(grid_cell_crossings) /* moves that changed grid cell */            \
    X(grid_rebuilds)     /* flat-storage compactions (cell overflow) */  \
    X(packet_allocs)     /* packet blocks taken from the heap */         \
    X(packet_pool_reuses) /* packet blocks recycled from the pool */     \
    X(alive_snapshots)   /* alive_nodes()/neighbor vector copies */       \
    X(quorum_loads_counted) /* per-node access-load increments (MRW) */   \
    X(byzantine_tampers) /* replies dropped/forged by the adversary */    \
    X(energy_sleep_transitions) /* duty-cycle sleep entries */            \
    X(energy_depletions) /* batteries that hit zero (permanent death) */  \
    X(lease_expirations) /* leased values evicted at their deadline */    \
    X(refreshes_deferred) /* refresher ticks deferred: owner asleep */

struct KernelStats {
#define PQS_KERNEL_STATS_DECL(field) std::uint64_t field = 0;
    PQS_KERNEL_STATS_FIELDS(PQS_KERNEL_STATS_DECL)
#undef PQS_KERNEL_STATS_DECL

    KernelStats& operator+=(const KernelStats& other) {
#define PQS_KERNEL_STATS_ADD(field) field += other.field;
        PQS_KERNEL_STATS_FIELDS(PQS_KERNEL_STATS_ADD)
#undef PQS_KERNEL_STATS_ADD
        return *this;
    }
};

// One named view per counter, in declaration order — lets report/JSON
// code iterate the block generically.
struct KernelStatsField {
    const char* name;
    std::uint64_t (*get)(const KernelStats&);
};
const KernelStatsField* kernel_stats_fields(std::size_t* count);

// Prints the block as a single "[perf] kernel <label>: ..." line to
// `stream` (stderr by default, matching exp::report_perf: stdout tables
// stay byte-identical while perf telemetry goes to the side channel).
void report_kernel_stats(const KernelStats& stats, const char* label,
                         std::FILE* stream = stderr);

}  // namespace pqs::util
