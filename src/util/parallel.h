// Minimal fixed-size worker pool for embarrassingly parallel loops. The
// simulation itself is single-threaded per trial; parallelism enters only
// at the trial level (independent scenario runs with independent seeds),
// so a dynamic-scheduling parallel_for is all the machinery we need.
#pragma once

#include <cstddef>
#include <functional>

namespace pqs::util {

// Worker count honoring the PQS_THREADS environment variable; falls back
// to std::thread::hardware_concurrency(), never returns 0.
std::size_t default_thread_count();

// Runs body(i) for every i in [0, count) across `threads` workers with
// dynamic scheduling (shared atomic index), blocking until all complete.
// threads == 0 means default_thread_count(); threads == 1 (or count <= 1)
// runs inline on the caller. The first exception thrown by any body is
// rethrown on the caller after every worker has joined.
//
// Ordering guarantee: callers that store results indexed by `i` and reduce
// them after return get the same answer for every thread count.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace pqs::util
