// Small-buffer, move-only callable: the event-kernel replacement for
// std::function. A closure whose size fits `Capacity` bytes is stored
// inline (no heap allocation on construction, move or destruction);
// larger closures fall back to a single heap allocation. Dispatch goes
// through a per-type static ops table, so the object itself is just the
// buffer plus one pointer.
//
// Differences from std::function, both deliberate:
//   - move-only (so move-only captures like unique_ptr work, and no
//     copy support code bloats the hot path);
//   - the inline capacity is a template parameter tuned by the caller
//     (sim::EventFn uses 64 bytes, enough for every scheduling lambda
//     in the stack: `this` + a PacketPtr + ids + a moved-in
//     continuation).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pqs::util {

template <typename Signature, std::size_t Capacity = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
public:
    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D&, Args...>>>
    InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
        if constexpr (stored_inline<D>()) {
            ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
            ops_ = ops_for<D, /*Inline=*/true>();
        } else {
            ::new (static_cast<void*>(buffer_))
                (D*)(new D(std::forward<F>(f)));
            ops_ = ops_for<D, /*Inline=*/false>();
        }
    }

    InlineFunction(InlineFunction&& other) noexcept { take(other); }

    InlineFunction& operator=(InlineFunction&& other) noexcept {
        if (this != &other) {
            reset();
            take(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { reset(); }

    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(buffer_);
            ops_ = nullptr;
        }
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    R operator()(Args... args) {
        return ops_->invoke(buffer_, std::forward<Args>(args)...);
    }

    // True when the stored callable lives in the inline buffer; false for
    // the heap fallback. Exposed so tests and kernel stats can assert the
    // no-allocation property of the common path.
    bool is_inline() const noexcept {
        return ops_ != nullptr && ops_->inline_stored;
    }

    static constexpr std::size_t capacity() { return Capacity; }

    // Whether a callable of type D would be stored inline.
    template <typename D>
    static constexpr bool stored_inline() {
        return sizeof(D) <= Capacity &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

private:
    struct Ops {
        R (*invoke)(void* target, Args&&... args);
        // Move-constructs the callable from `src` into `dst`, then destroys
        // the `src` copy. Used by the move constructor/assignment.
        void (*relocate)(void* src, void* dst) noexcept;
        void (*destroy)(void* target) noexcept;
        bool inline_stored;
    };

    template <typename D, bool Inline>
    static const Ops* ops_for() {
        static constexpr Ops ops = [] {
            if constexpr (Inline) {
                return Ops{
                    [](void* target, Args&&... args) -> R {
                        return (*static_cast<D*>(target))(
                            std::forward<Args>(args)...);
                    },
                    [](void* src, void* dst) noexcept {
                        D* from = static_cast<D*>(src);
                        ::new (dst) D(std::move(*from));
                        from->~D();
                    },
                    [](void* target) noexcept {
                        static_cast<D*>(target)->~D();
                    },
                    /*inline_stored=*/true,
                };
            } else {
                return Ops{
                    [](void* target, Args&&... args) -> R {
                        return (**static_cast<D**>(target))(
                            std::forward<Args>(args)...);
                    },
                    [](void* src, void* dst) noexcept {
                        ::new (dst) (D*)(*static_cast<D**>(src));
                    },
                    [](void* target) noexcept {
                        delete *static_cast<D**>(target);
                    },
                    /*inline_stored=*/false,
                };
            }
        }();
        return &ops;
    }

    void take(InlineFunction& other) noexcept {
        if (other.ops_ != nullptr) {
            other.ops_->relocate(other.buffer_, buffer_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buffer_[Capacity];
    const Ops* ops_ = nullptr;
};

}  // namespace pqs::util
