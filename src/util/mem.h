// Process memory telemetry for the perf report and the scale bench.
// Host-dependent by nature, so these values stay on the [perf] stderr
// channel and in bench JSON wall-measurement fields — never in
// deterministic results.
#pragma once

#include <cstdint>

namespace pqs::util {

// Peak resident set size of the calling process in bytes (getrusage
// ru_maxrss); 0 when the platform does not report it.
std::uint64_t peak_rss_bytes();

}  // namespace pqs::util
