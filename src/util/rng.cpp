#include "util/rng.h"

#include <cmath>

namespace pqs::util {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64(sm);
    }
    has_spare_normal_ = false;
}

Rng::result_type Rng::next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
    if (bound == 0) {
        throw std::invalid_argument("Rng::uniform_u64: bound must be > 0");
    }
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) {
        throw std::invalid_argument("Rng::uniform_int: lo > hi");
    }
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t r = (span == 0) ? next() : uniform_u64(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r);
}

double Rng::uniform01() {
    // 53 random bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::exponential(double rate) {
    if (rate <= 0.0) {
        throw std::invalid_argument("Rng::exponential: rate must be > 0");
    }
    // 1 - U in (0, 1] avoids log(0).
    return -std::log(1.0 - uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return mean + stddev * spare_normal_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * factor;
    has_spare_normal_ = true;
    return mean + stddev * u * factor;
}

Rng Rng::fork() { return Rng{next()}; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
    if (k > n) {
        throw std::invalid_argument(
            "Rng::sample_without_replacement: k must be <= n");
    }
    // Floyd's algorithm: expected O(k) inserts, produces a uniform k-subset.
    std::vector<std::size_t> result;
    result.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
        const std::size_t t = static_cast<std::size_t>(uniform_u64(j + 1));
        bool already = false;
        for (const std::size_t chosen : result) {
            if (chosen == t) {
                already = true;
                break;
            }
        }
        result.push_back(already ? j : t);
    }
    // Shuffle so the order is also uniform (Floyd's yields a set, and the
    // insertion order is biased toward small values at the front).
    shuffle(result);
    return result;
}

}  // namespace pqs::util
