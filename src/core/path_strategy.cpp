#include "core/path_strategy.h"

#include <algorithm>

#include "net/node_stack.h"

namespace pqs::core {

struct PathStrategy::WalkMsg final : net::AppMessage {
    std::uint32_t strategy_tag = 0;
    util::AccessId op;
    AccessKind kind = AccessKind::kLookup;
    util::Key key = 0;
    Value value = 0;
    std::size_t target_unique = 0;
    bool early_halt = true;
    bool replied = false;  // a reply was already sent for this lookup
    // Distinct nodes in first-visit order (also the paper's header list
    // used to count coverage), and the full hop path for the reply.
    std::vector<util::NodeId> visited;
    std::vector<util::NodeId> path;
    std::shared_ptr<WalkTracker> tracker;
    std::shared_ptr<ReplyTracker> reply_tracker;
    ReplyOptions reply_options;

    // 512-byte payload plus the visited-list header (§4.2).
    std::size_t size_bytes() const override {
        return 512 + 4 * visited.size();
    }
};

PathStrategy::PathStrategy(ServiceContext& ctx, StrategyConfig config,
                           std::uint32_t tag, bool unique)
    : AccessStrategy(ctx, config, tag),
      unique_(unique),
      ops_(ctx.world.simulator()),
      rng_(ctx.world.rng().fork()) {}

void PathStrategy::attach_node(util::NodeId id) {
    net::NodeStack& stack = ctx_.world.stack(id);
    stack.add_app_handler(
        [this, id](util::NodeId, util::NodeId, const net::AppMsgPtr& msg) {
            const auto walk = std::dynamic_pointer_cast<const WalkMsg>(msg);
            if (!walk || walk->strategy_tag != tag_) {
                return false;
            }
            visit(id, walk);
            return true;
        });
    if (config_.overhearing) {
        // §7.2: a promiscuous neighbor holding the item answers the walk it
        // overheard and stops it at its next hop.
        stack.add_overhear_handler([this, id](const net::Packet& packet) {
            if (!packet.is_data()) {
                return;
            }
            const auto walk =
                std::dynamic_pointer_cast<const WalkMsg>(packet.data().app);
            if (!walk || walk->strategy_tag != tag_ ||
                walk->kind != AccessKind::kLookup || walk->replied ||
                walk->tracker->halted) {
                return;
            }
            const std::optional<Value> found = ctx_.store(id).find(walk->key);
            if (!found) {
                return;
            }
            walk->tracker->hit = true;
            walk->tracker->halted = true;
            obs::record(walk->trace, obs::EventKind::kEarlyHalt, id,
                        walk->visited.size());
            std::vector<util::NodeId> path = walk->path;
            path.push_back(id);
            ctx_.reply_router->start_reply(id, tag_, walk->op, walk->key,
                                           *found, path, walk->reply_options,
                                           walk->reply_tracker, walk->trace);
        });
    }
}

void PathStrategy::access(AccessKind kind, util::NodeId origin,
                          util::Key key, Value value, obs::TraceId trace,
                          AccessCallback done) {
    const util::AccessId op = next_op(origin);
    auto tracker = std::make_shared<WalkTracker>();
    auto reply_tracker = std::make_shared<ReplyTracker>();
    auto entry =
        ops_.open(op, std::move(done), ctx_.op_timeout,
                  [tracker, reply_tracker](AccessResult& r) {
                      r.intersected = tracker->hit;
                      r.nodes_contacted = tracker->unique;
                  });
    entry->state.kind = kind;
    entry->state.key = key;
    entry->state.tracker = tracker;
    entry->state.reply_tracker = reply_tracker;

    auto msg = std::make_shared<WalkMsg>();
    msg->trace = trace;
    msg->strategy_tag = tag_;
    msg->op = op;
    msg->kind = kind;
    msg->key = key;
    msg->value = value;
    msg->target_unique = std::max<std::size_t>(1, config_.quorum_size);
    msg->early_halt = config_.early_halt && kind == AccessKind::kLookup;
    msg->tracker = tracker;
    msg->reply_tracker = reply_tracker;
    msg->reply_options = ReplyOptions{
        config_.reply_path_reduction, config_.reply_local_repair,
        config_.reply_repair_ttl, config_.reply_global_repair_fallback,
        config_.cache_replies};

    // The walk terminal event resolves advertises (full coverage) and
    // lookup misses; lookup hits resolve when the reply message arrives.
    // Captured weakly: the tracker owning a closure that owns the tracker
    // is a shared_ptr cycle, and a walk still in flight at simulation end
    // never fires terminal() to break it.
    tracker->on_terminal = [this, op,
                            weak = std::weak_ptr<WalkTracker>(tracker)] {
        const auto walk = weak.lock();
        if (!walk) {
            return;
        }
        auto e = ops_.find(op);
        if (!e) {
            return;
        }
        if (e->state.kind == AccessKind::kAdvertise) {
            AccessResult result;
            result.ok = walk->covered;
            result.nodes_contacted = walk->unique;
            ops_.resolve(op, result);
            return;
        }
        if (!walk->hit) {
            // The walk ended without touching an advertiser: definite miss.
            AccessResult result;
            result.ok = false;
            result.nodes_contacted = walk->unique;
            ops_.resolve(op, result);
        }
        // Otherwise wait for the reverse-path reply (or the op timeout if
        // the reply is lost — exactly the Fig. 13 failure mode).
    };

    // The originator is the walk's first member (§8.3).
    visit(origin, std::move(msg));
}

void PathStrategy::visit(util::NodeId at,
                         std::shared_ptr<const WalkMsg> msg) {
    if (msg->tracker->halted) {
        // An overhearing neighbor already answered (§7.2).
        msg->tracker->terminal();
        return;
    }
    auto m = std::make_shared<WalkMsg>(*msg);
    if (std::find(m->visited.begin(), m->visited.end(), at) ==
        m->visited.end()) {
        m->visited.push_back(at);
        m->tracker->unique = m->visited.size();
        ctx_.count_load(at);  // this node serves as a quorum member
        obs::record(m->trace, obs::EventKind::kQuorumMemberReached, at,
                    m->visited.size());
    }
    if (m->path.empty() || m->path.back() != at) {
        m->path.push_back(at);
    }

    LocalStore& store = ctx_.store(at);
    if (m->kind == AccessKind::kAdvertise) {
        ctx_.store_value(at, m->key, m->value, config_.monotonic_store);
    } else if (!m->replied) {
        if (const std::optional<Value> found = store.find(m->key)) {
            m->tracker->hit = true;
            m->replied = true;
            ctx_.reply_router->start_reply(at, tag_, m->op, m->key, *found,
                                           m->path, m->reply_options,
                                           m->reply_tracker, m->trace);
            if (m->early_halt) {
                obs::record(m->trace, obs::EventKind::kEarlyHalt, at,
                            m->visited.size());
                m->tracker->terminal();
                return;
            }
        }
    }

    if (m->visited.size() >= m->target_unique) {
        m->tracker->covered = true;
        m->tracker->terminal();
        return;
    }
    forward(at, std::move(m), config_.salvage_retries, {});
}

void PathStrategy::forward(util::NodeId at,
                           std::shared_ptr<const WalkMsg> msg,
                           int salvage_left,
                           std::vector<util::NodeId> excluded_hops) {
    // awake(), not alive(): a walk stranded on a node whose radio went to
    // sleep cannot take another hop — without this the forward below fails
    // silently and the tracker never reaches terminal(), hanging the op
    // until its timeout instead of accounting the death.
    if (!ctx_.world.awake(at)) {
        obs::record(msg->trace, obs::EventKind::kWalkDied, at);
        msg->tracker->died = true;
        msg->tracker->terminal();
        return;
    }
    net::NodeStack& stack = ctx_.world.stack(at);
    std::vector<util::NodeId> neighbors = stack.neighbors();
    // Never bounce back through hops that just failed (salvation).
    std::erase_if(neighbors, [&](util::NodeId v) {
        return std::find(excluded_hops.begin(), excluded_hops.end(), v) !=
               excluded_hops.end();
    });
    util::NodeId next = util::kInvalidNode;
    if (unique_) {
        // Self-avoiding step: prefer unvisited neighbors (§4.3).
        std::vector<util::NodeId> fresh;
        for (const util::NodeId v : neighbors) {
            if (std::find(msg->visited.begin(), msg->visited.end(), v) ==
                msg->visited.end()) {
                fresh.push_back(v);
            }
        }
        if (!fresh.empty()) {
            next = fresh[rng_.index(fresh.size())];
        }
    }
    if (next == util::kInvalidNode) {
        if (neighbors.empty()) {
            obs::record(msg->trace, obs::EventKind::kWalkDied, at);
            msg->tracker->died = true;
            msg->tracker->terminal();
            return;
        }
        next = neighbors[rng_.index(neighbors.size())];
    }

    ++msg->tracker->steps;
    stack.send_unicast(
        next, msg,
        [this, at, msg, salvage_left, next,
         excluded = std::move(excluded_hops)](bool ok) mutable {
            if (ok) {
                return;
            }
            if (salvage_left <= 0) {
                obs::record(msg->trace, obs::EventKind::kWalkDied, at);
                msg->tracker->died = true;
                msg->tracker->terminal();
                return;
            }
            // RW salvation (§6.2): same step, different neighbor.
            obs::record(msg->trace, obs::EventKind::kSalvation, at,
                        static_cast<std::uint64_t>(salvage_left));
            excluded.push_back(next);
            forward(at, msg, salvage_left - 1, std::move(excluded));
        });
}

void PathStrategy::on_reverse_reply(util::NodeId /*origin*/,
                                    const ReverseReplyMsg& msg) {
    auto entry = ops_.find(msg.op);
    if (!entry) {
        return;  // duplicate or post-timeout reply
    }
    AccessResult result;
    result.ok = true;
    result.intersected = true;
    result.value = msg.value;
    result.nodes_contacted = entry->state.tracker->unique;
    ops_.resolve(msg.op, result);
}

}  // namespace pqs::core
