#include "core/random_strategy.h"

#include <algorithm>
#include <cmath>

#include "net/node_stack.h"
#include "net/tamper.h"

namespace pqs::core {

namespace {
constexpr sim::Time kReplyGrace = 3 * sim::kSecond;
}

// Sampling-mode walk: a maximum-degree random walk of fixed length whose
// terminal node becomes the quorum member (§4.1, direct sampling).
struct RandomStrategy::SamplingWalkMsg final : net::AppMessage {
    std::uint32_t strategy_tag = 0;
    util::AccessId op;
    AccessKind kind = AccessKind::kLookup;
    util::Key key = 0;
    Value value = 0;
    std::size_t remaining = 0;
    std::vector<util::NodeId> path;  // hop sequence from the origin
    std::shared_ptr<IntersectionProbe> probe;
    ReplyOptions reply_options;

    std::size_t size_bytes() const override { return 512 + 4 * path.size(); }
};

RandomStrategy::RandomStrategy(ServiceContext& ctx, StrategyConfig config,
                               std::uint32_t tag, Mode mode)
    : AccessStrategy(ctx, config, tag),
      mode_(mode),
      ops_(ctx.world.simulator()),
      rng_(ctx.world.rng().fork()) {}

RandomStrategy::~RandomStrategy() {
    ops_.for_each_state([this](OpState& state) {
        if (state.grace_timer != sim::kInvalidEvent) {
            ctx_.world.simulator().cancel(state.grace_timer);
            state.grace_timer = sim::kInvalidEvent;
        }
    });
}

std::string RandomStrategy::name() const {
    return mode_ == Mode::kMembership ? "RANDOM" : "RANDOM(sampling)";
}

std::vector<util::NodeId> RandomStrategy::pick_targets(util::NodeId origin,
                                                       std::size_t k) {
    if (ctx_.membership != nullptr) {
        return ctx_.membership->sample(origin, k);
    }
    // Fallback for worlds without a membership service: sample ground truth
    // (used in unit tests; real setups always attach a service).
    const util::AliveSet& alive = ctx_.world.alive_set();
    const std::size_t take = std::min(k, alive.count());
    std::vector<util::NodeId> out;
    out.reserve(take);
    for (const std::size_t idx :
         rng_.sample_without_replacement(alive.count(), take)) {
        out.push_back(alive.select(idx));
    }
    return out;
}

void RandomStrategy::attach_node(util::NodeId id) {
    ctx_.world.stack(id).add_app_handler(
        [this, id](util::NodeId, util::NodeId, const net::AppMsgPtr& msg) {
            if (const auto req =
                    std::dynamic_pointer_cast<const QuorumRequestMsg>(msg);
                req && req->strategy_tag == tag_) {
                LocalStore& store = ctx_.store(id);
                ctx_.count_load(id);
                obs::record(req->trace, obs::EventKind::kQuorumMemberReached,
                            id);
                if (req->kind == AccessKind::kAdvertise) {
                    ctx_.store_value(id, req->key, req->value,
                                     config_.monotonic_store);
                    return true;
                }
                const std::optional<Value> found = store.find(req->key);
                if (found && req->probe) {
                    req->probe->intersected = true;
                }
                if ((found && req->want_reply) ||
                    (!found && req->want_miss_reply)) {
                    auto reply = std::make_shared<QuorumReplyMsg>();
                    reply->trace = req->trace;
                    reply->strategy_tag = tag_;
                    reply->op = req->op;
                    reply->key = req->key;
                    reply->found = found.has_value();
                    reply->value = found.value_or(0);
                    reply->responder = id;
                    ctx_.world.stack(id).send_routed(req->op.origin, reply,
                                                     nullptr);
                } else if (!found && req->want_reply) {
                    // An honest node stays silent on a miss; a Byzantine
                    // quorum member answers every query (the masking
                    // threat model). One pointer load when no tamper is
                    // installed — bit-identical to the pre-hook build.
                    net::ReplyTamper* tamper = ctx_.world.tamper();
                    Value lie = 0;
                    if (tamper != nullptr &&
                        tamper->on_lookup_miss(id, req->key, lie)) {
                        auto reply = std::make_shared<QuorumReplyMsg>();
                        reply->trace = req->trace;
                        reply->strategy_tag = tag_;
                        reply->op = req->op;
                        reply->key = req->key;
                        reply->found = true;
                        reply->value = lie;
                        reply->responder = id;
                        ctx_.world.stack(id).send_routed(req->op.origin,
                                                         reply, nullptr);
                    }
                }
                return true;
            }
            if (const auto reply =
                    std::dynamic_pointer_cast<const QuorumReplyMsg>(msg);
                reply && reply->strategy_tag == tag_) {
                auto entry = ops_.find(reply->op);
                if (!entry) {
                    return true;  // late reply for a resolved op
                }
                if (reply->found) {
                    if (config_.collect_all_replies) {
                        entry->state.collected.push_back(reply->value);
                        entry->state.responder_ids.push_back(
                            reply->responder);
                        maybe_finish(reply->op);
                    } else {
                        finish(reply->op, true, reply->value);
                    }
                } else if (entry->state.serial) {
                    send_to_target(reply->op, reply->op.origin,
                                   util::kInvalidNode);
                }
                return true;
            }
            if (const auto walk =
                    std::dynamic_pointer_cast<const SamplingWalkMsg>(msg);
                walk && walk->strategy_tag == tag_) {
                sampling_visit(id, walk);
                return true;
            }
            return false;
        });
}

void RandomStrategy::access(AccessKind kind, util::NodeId origin,
                            util::Key key, Value value, obs::TraceId trace,
                            AccessCallback done) {
    const util::AccessId op = next_op(origin);
    auto probe = std::make_shared<IntersectionProbe>();
    auto entry = ops_.open(op, std::move(done), ctx_.op_timeout,
                            [probe](AccessResult& r) {
                                r.intersected = probe->intersected;
                            });
    entry->state.kind = kind;
    entry->state.key = key;
    entry->state.value = value;
    entry->state.probe = std::move(probe);
    entry->state.serial = config_.serial && kind == AccessKind::kLookup;
    entry->state.replacements_left = config_.replacement_targets;
    entry->state.trace = trace;

    if (mode_ == Mode::kSampling) {
        launch_sampling_walks(op, origin);
        return;
    }

    entry->state.targets = pick_targets(origin, config_.quorum_size);
    launch_targets(op, origin);
}

void RandomStrategy::access_directed(AccessKind kind, util::NodeId origin,
                                     util::Key key, Value value,
                                     const std::vector<util::NodeId>& targets,
                                     obs::TraceId trace, AccessCallback done) {
    if (mode_ == Mode::kSampling || targets.empty()) {
        // Walk terminals are not addressable; an empty hint means the
        // caller has nothing cached. Either way: a plain access.
        access(kind, origin, key, value, trace, std::move(done));
        return;
    }
    const util::AccessId op = next_op(origin);
    auto probe = std::make_shared<IntersectionProbe>();
    auto entry = ops_.open(op, std::move(done), ctx_.op_timeout,
                           [probe](AccessResult& r) {
                               r.intersected = probe->intersected;
                           });
    entry->state.kind = kind;
    entry->state.key = key;
    entry->state.value = value;
    entry->state.probe = std::move(probe);
    entry->state.serial = config_.serial && kind == AccessKind::kLookup;
    // No §6.2 replacements: a dead cached target must produce a visible
    // miss, not a silently healed quorum (the caller owns invalidation).
    entry->state.replacements_left = 0;
    entry->state.trace = trace;
    // Exactly the given targets, no random top-up: a directed access aims
    // at nodes *known* to hold the key (prior responders), so padding to
    // |Qℓ| would re-pay the random-quorum message cost the cache exists
    // to avoid — and would silently heal a dead cached set, hiding the
    // staleness the caller is responsible for evicting on.
    entry->state.targets = targets;
    if (entry->state.targets.size() > config_.quorum_size) {
        entry->state.targets.resize(config_.quorum_size);
    }
    launch_targets(op, origin);
}

void RandomStrategy::launch_targets(util::AccessId op, util::NodeId origin) {
    auto entry = ops_.find(op);
    if (!entry) {
        return;
    }
    entry->state.target_quorum = entry->state.targets.size();
    if (entry->state.targets.empty()) {
        finish(op, false, 0);
        return;
    }
    if (entry->state.serial) {
        send_to_target(op, origin, util::kInvalidNode);  // advances cursor
        return;
    }
    // Parallel access to the whole quorum. Iterate a copy: a send can
    // deliver locally and resolve the op synchronously, erasing the ops_
    // entry (and the vector inside it) mid-loop.
    const std::vector<util::NodeId> targets = entry->state.targets;
    for (const util::NodeId target : targets) {
        send_to_target(op, origin, target);
    }
    if (auto e = ops_.find(op)) {
        e->state.all_sent = true;
        maybe_finish(op);
    }
}

void RandomStrategy::send_to_target(util::AccessId op, util::NodeId origin,
                                    util::NodeId target) {
    auto entry = ops_.find(op);
    if (!entry) {
        return;
    }
    OpState& state = entry->state;
    if (target == util::kInvalidNode) {
        // Serial mode: take the next unvisited target.
        if (state.next_target >= state.targets.size()) {
            finish(op, false, 0);  // quorum exhausted without a hit
            return;
        }
        target = state.targets[state.next_target++];
        state.all_sent = state.next_target == state.targets.size();
    }
    auto msg = std::make_shared<QuorumRequestMsg>();
    msg->trace = state.trace;
    msg->strategy_tag = tag_;
    msg->op = op;
    msg->kind = state.kind;
    msg->key = state.key;
    msg->value = state.value;
    msg->origin = origin;
    msg->want_reply = state.kind == AccessKind::kLookup;
    msg->want_miss_reply = state.serial;
    msg->probe = state.probe;
    ++state.outstanding;
    ctx_.world.stack(origin).send_routed(
        target, msg,
        [this, op, origin](bool delivered) {
            on_target_resolved(op, origin, delivered);
        });
}

void RandomStrategy::on_target_resolved(util::AccessId op,
                                        util::NodeId origin, bool delivered) {
    auto entry = ops_.find(op);
    if (!entry) {
        return;
    }
    OpState& state = entry->state;
    if (state.outstanding > 0) {
        --state.outstanding;
    }
    if (delivered) {
        ++state.delivered;
    } else if (state.serial) {
        // Unreachable target: adapt by moving on (§6.2, application
        // adaptation) instead of retrying the same node.
        send_to_target(op, origin, util::kInvalidNode);
        return;
    } else if (state.replacements_left > 0) {
        // Parallel mode: replace the unreachable target with a fresh
        // random node (§6.2) — resending to the same one would fail again.
        --state.replacements_left;
        const auto replacement = pick_targets(origin, 1);
        if (!replacement.empty()) {
            state.targets.push_back(replacement.front());
            send_to_target(op, origin, replacement.front());
            return;
        }
    }
    maybe_finish(op);
}

void RandomStrategy::maybe_finish(util::AccessId op) {
    auto entry = ops_.find(op);
    if (!entry) {
        return;
    }
    OpState& state = entry->state;
    if (!state.all_sent || state.outstanding > 0) {
        return;
    }
    if (state.kind == AccessKind::kAdvertise) {
        finish(op, state.delivered >= state.target_quorum, 0);
        return;
    }
    if (state.serial) {
        return;  // serial lookups conclude via replies
    }
    // Parallel lookup: every request resolved; give hit replies a grace
    // window to arrive, then declare a miss.
    if (state.grace_timer == sim::kInvalidEvent) {
        state.grace_timer = ctx_.world.simulator().schedule_in(
            kReplyGrace, [this, op] {
                if (auto e = ops_.find(op)) {
                    e->state.grace_timer = sim::kInvalidEvent;
                }
                finish(op, false, 0);
            });
    }
}

void RandomStrategy::finish(util::AccessId op, bool hit, Value value) {
    auto entry = ops_.find(op);
    if (!entry) {
        return;
    }
    OpState& state = entry->state;
    // A hit reply can beat the armed grace timer; the pending event holds
    // `this`, so it must not survive the op (or the strategy).
    if (state.grace_timer != sim::kInvalidEvent) {
        ctx_.world.simulator().cancel(state.grace_timer);
        state.grace_timer = sim::kInvalidEvent;
    }
    AccessResult result;
    if (state.kind == AccessKind::kAdvertise) {
        result.ok = hit;  // "hit" carries full-coverage for advertises
        result.nodes_contacted = state.delivered;
    } else {
        result.ok = hit || !state.collected.empty();
        result.intersected =
            result.ok || (state.probe && state.probe->intersected);
        result.values = state.collected;
        result.responders = state.responder_ids;
        if (hit) {
            result.value = value;
        } else if (!state.collected.empty()) {
            result.value = state.collected.front();
        }
        result.nodes_contacted =
            state.serial ? state.next_target : state.delivered;
    }
    if (mode_ == Mode::kSampling) {
        result.nodes_contacted = state.walks_ended;
    }
    ops_.resolve(op, result);
}

void RandomStrategy::on_reverse_reply(util::NodeId /*origin*/,
                                      const ReverseReplyMsg& msg) {
    // Sampling-mode lookups reply along the walk's reverse path.
    if (ops_.find(msg.op)) {
        finish(msg.op, true, msg.value);
    }
}

// ---------------- sampling mode ----------------

void RandomStrategy::launch_sampling_walks(util::AccessId op,
                                           util::NodeId origin) {
    auto entry = ops_.find(op);
    const std::size_t n = ctx_.world.params().n;
    const std::size_t length = config_.sampling_walk_length != 0
                                   ? config_.sampling_walk_length
                                   : std::max<std::size_t>(1, n / 2);
    const std::size_t count = config_.quorum_size;
    entry->state.targets.resize(count);  // walk bookkeeping only
    for (std::size_t i = 0; i < count; ++i) {
        auto msg = std::make_shared<SamplingWalkMsg>();
        msg->trace = entry->state.trace;
        msg->strategy_tag = tag_;
        msg->op = op;
        msg->kind = entry->state.kind;
        msg->key = entry->state.key;
        msg->value = entry->state.value;
        msg->remaining = length;
        msg->probe = entry->state.probe;
        msg->reply_options = ReplyOptions{
            config_.reply_path_reduction, config_.reply_local_repair,
            config_.reply_repair_ttl, config_.reply_global_repair_fallback,
            config_.cache_replies};
        sampling_visit(origin, std::move(msg));
    }
}

void RandomStrategy::sampling_visit(
    util::NodeId at, std::shared_ptr<const SamplingWalkMsg> msg) {
    auto stamped = std::make_shared<SamplingWalkMsg>(*msg);
    if (stamped->path.empty() || stamped->path.back() != at) {
        stamped->path.push_back(at);
    }
    if (stamped->remaining == 0) {
        sampling_terminal(at, std::move(stamped));
        return;
    }
    sampling_forward(at, std::move(stamped), config_.salvage_retries);
}

void RandomStrategy::sampling_forward(
    util::NodeId at, std::shared_ptr<const SamplingWalkMsg> msg,
    int salvage_left) {
    // awake(), not alive(): an asleep node's radio cannot forward either —
    // the walk terminates where it stands, same as on a crashed node.
    if (!ctx_.world.awake(at)) {
        sampling_terminal(at, std::move(msg));  // walk dies where it stands
        return;
    }
    net::NodeStack& stack = ctx_.world.stack(at);
    const std::vector<util::NodeId> neighbors = stack.neighbors();
    if (neighbors.empty()) {
        sampling_terminal(at, std::move(msg));
        return;
    }
    // Maximum-degree transition: uniform neighbor w.p. deg/d_max, else a
    // (free) self-loop. d_max is estimated from the target density.
    const std::size_t d_max = std::max<std::size_t>(
        neighbors.size(),
        static_cast<std::size_t>(
            std::ceil(3.0 * ctx_.world.params().avg_degree)));
    const std::size_t slot = rng_.index(d_max);
    auto next = std::make_shared<SamplingWalkMsg>(*msg);
    next->remaining = msg->remaining - 1;
    if (slot >= neighbors.size()) {
        if (next->remaining == 0) {
            sampling_terminal(at, std::move(next));
            return;
        }
        // pqs-lint: fire-and-forget(walk continuation owns its message via
        // shared_ptr; sampling_visit re-validates liveness at the next hop)
        ctx_.world.simulator().schedule_in(
            1 * sim::kMillisecond,
            [this, at, next] { sampling_visit(at, next); });
        return;
    }
    const util::NodeId next_hop = neighbors[slot];
    stack.send_unicast(next_hop, next,
                       [this, at, msg, salvage_left](bool ok) {
                           if (ok || salvage_left <= 0) {
                               return;
                           }
                           // RW salvation (§6.2).
                           sampling_forward(at, msg, salvage_left - 1);
                       });
}

void RandomStrategy::sampling_terminal(
    util::NodeId at, std::shared_ptr<const SamplingWalkMsg> msg) {
    LocalStore& store = ctx_.store(at);
    ctx_.count_load(at);
    obs::record(msg->trace, obs::EventKind::kQuorumMemberReached, at);
    if (msg->kind == AccessKind::kAdvertise) {
        ctx_.store_value(at, msg->key, msg->value, /*monotonic=*/false);
    } else if (const std::optional<Value> found = store.find(msg->key)) {
        if (msg->probe) {
            msg->probe->intersected = true;
        }
        ctx_.reply_router->start_reply(at, tag_, msg->op, msg->key, *found,
                                       msg->path, msg->reply_options,
                                       std::make_shared<ReplyTracker>(),
                                       msg->trace);
    }
    auto entry = ops_.find(msg->op);
    if (!entry) {
        return;
    }
    OpState& state = entry->state;
    ++state.walks_ended;
    if (state.walks_ended < state.targets.size()) {
        return;
    }
    if (state.kind == AccessKind::kAdvertise) {
        finish(msg->op, true, 0);
    } else if (state.grace_timer == sim::kInvalidEvent) {
        state.grace_timer = ctx_.world.simulator().schedule_in(
            kReplyGrace, [this, op = msg->op] {
                if (auto e = ops_.find(op)) {
                    e->state.grace_timer = sim::kInvalidEvent;
                }
                finish(op, false, 0);
            });
    }
}

}  // namespace pqs::core
