// RANDOM-OPT access strategy (§4.5): like membership-based RANDOM but with
// a cross-layer optimization — every node a request passes *through* also
// acts on it. For advertises, intermediate nodes store the mapping too; for
// lookups, an intermediate node holding the key answers immediately and
// stops the request from travelling further (early halting en route).
// Only ~ln(n) routed requests are needed for the same effective quorum
// size as RANDOM's sqrt(n) (§8.2).
#pragma once

#include "core/access_strategy.h"

namespace pqs::core {

class RandomOptStrategy final : public AccessStrategy {
public:
    RandomOptStrategy(ServiceContext& ctx, StrategyConfig config,
                      std::uint32_t tag);
    // Cancels the reply-grace timers of still-pending ops: their events
    // capture `this` and must not outlive the strategy.
    ~RandomOptStrategy() override;

    std::string name() const override { return "RANDOM-OPT"; }
    void attach_node(util::NodeId id) override;
    void access(AccessKind kind, util::NodeId origin, util::Key key,
                Value value, obs::TraceId trace,
                AccessCallback done) override;

private:
    struct OpState {
        AccessKind kind = AccessKind::kLookup;
        util::Key key = 0;
        Value value = 0;
        std::size_t targets = 0;
        std::size_t outstanding = 0;
        std::size_t delivered = 0;
        bool all_sent = false;
        std::shared_ptr<IntersectionProbe> probe;
        sim::EventId grace_timer = sim::kInvalidEvent;
        obs::TraceId trace = 0;
    };

    // Acts on a request at `id` (en route or at the target). Returns true
    // when the request is fully absorbed (lookup hit) and, for snooped
    // packets, must not be forwarded further.
    bool act_on_request(util::NodeId id, const QuorumRequestMsg& req);
    void on_target_resolved(util::AccessId op, bool delivered);
    void maybe_finish(util::AccessId op);
    void finish(util::AccessId op, bool hit, Value value);

    OpTable<OpState> ops_;
    util::Rng rng_;
};

}  // namespace pqs::core
