#include "core/lease.h"

namespace pqs::core {

void LeaseManager::arm(util::NodeId holder, util::Key key, sim::Time lease) {
    if (lease <= 0) {
        return;
    }
    const auto slot = std::make_pair(holder, key);
    if (const auto it = pending_.find(slot); it != pending_.end()) {
        // Re-advertise extends the lease: the old deadline is dead.
        simulator_.cancel(it->second);
        pending_.erase(it);
    }
    pending_[slot] = simulator_.schedule_in(
        lease, [this, holder, key] { expire(holder, key); });
}

void LeaseManager::expire(util::NodeId holder, util::Key key) {
    pending_.erase(std::make_pair(holder, key));
    if (stores_ != nullptr && holder < stores_->size()) {
        (*stores_)[holder].erase(key);
    }
    ++expirations_;
    if (expire_counter_ != nullptr) {
        ++*expire_counter_;
    }
}

void LeaseManager::cancel_all() {
    for (const auto& [slot, event] : pending_) {
        simulator_.cancel(event);
    }
    pending_.clear();
}

}  // namespace pqs::core
