// Configuration of a probabilistic biquorum system: which access strategy
// serves each side, target quorum sizes, and the per-strategy knobs
// (early halting, salvation, reply-path repair, flooding TTL, ...).
#pragma once

#include <cstddef>

#include "core/theory.h"

namespace pqs::core {

struct StrategyConfig {
    StrategyKind kind = StrategyKind::kUniquePath;

    // Target quorum size |Q|. For RANDOM-OPT this is the number of routed
    // requests X (the effective quorum is larger, ~X*sqrt(n/ln n), §4.5).
    // 0 derives the size from the biquorum epsilon (see BiquorumSpec).
    std::size_t quorum_size = 0;

    // FLOODING: scope TTL; coverage is whatever the topology yields (§4.4).
    int flood_ttl = 3;
    // FLOODING lookups: instead of one fixed-TTL flood, issue expanding-ring
    // floods with TTL 1,2,... until a hit or flood_ttl is reached.
    bool expanding_ring = false;

    // Lookup walks/scans stop at the first hit (§7.1 relaxed semantics).
    bool early_halt = true;
    // RANDOM lookups: contact targets one at a time, stopping on the first
    // hit, instead of in parallel (§8.2).
    bool serial = false;

    // PATH/UNIQUE-PATH: per-hop resend attempts on MAC failure (§6.2).
    int salvage_retries = 3;
    // RANDOM: when a routed request fails (broken route, dead target),
    // adapt by contacting a replacement random node instead (§6.2
    // "application adaptation"), up to this many times per access.
    int replacement_targets = 3;
    // Reply handling for reverse-path replies (§6.2, §7.2).
    bool reply_path_reduction = true;
    bool reply_local_repair = true;
    int reply_repair_ttl = 3;
    // When scoped repair exhausts the path, fall back to full routing to
    // the origin instead of dropping the reply.
    bool reply_global_repair_fallback = true;

    // Sampling-based RANDOM: MD walk length (0 => n/2).
    std::size_t sampling_walk_length = 0;

    // §7.1 caching: relay nodes of reply messages keep a bystander copy of
    // the mapping (lookup side), and nodes that forward routed advertise
    // requests cache them en route (advertise side).
    bool cache_replies = false;
    bool enroute_cache = false;

    // §7.2 promiscuous overhearing (the paper's future-work optimization):
    // a node that overhears a lookup walk passing by a neighbor and holds
    // the item answers immediately and stops the walk. Requires the world
    // to run with promiscuous link delivery.
    bool overhearing = false;

    // RANDOM lookups: collect every quorum reply instead of resolving on
    // the first one; needed by read/write registers that must see the
    // highest version stored in the quorum (§2.5 strict semantics, §10).
    bool collect_all_replies = false;

    // Advertise side: treat stored values as versioned — a node keeps the
    // numerically larger value for a key instead of blindly overwriting
    // ("a new value cannot be overwritten by an older one", §6.1). Used by
    // the register service, which packs the version into the high bits.
    bool monotonic_store = false;
};

struct BiquorumSpec {
    StrategyConfig advertise;
    StrategyConfig lookup;
    // Desired non-intersection bound; used to derive any quorum size left
    // at 0 via Corollary 5.3 (b = 0) or the b-masking generalization.
    double eps = 0.1;

    // Byzantine fault budget b (Malkhi-Reiter-Wool masking). 0 keeps the
    // plain ε-intersection system. When > 0, derived sizes satisfy the
    // masking product bound (|Qa|-b)·|Qℓ| ≥ n·μ_min(ε,b) so that correct
    // intersection replies outvote up to b forged ones with prob ≥ 1-ε,
    // and lookups value-vote: a result needs > b concurring replies or is
    // reported inconclusive. Voting needs every reply, so the lookup side
    // is forced to collect_all_replies.
    std::size_t byzantine_b = 0;

    // Resolves unset sizes for a network of n nodes: if both are 0, use the
    // symmetric size sqrt(n ln 1/eps); if one is set, size the other to
    // meet the product bound. With byzantine_b > 0 the masking analogs
    // apply (bit-identical to the b = 0 path when byzantine_b == 0).
    void resolve_sizes(std::size_t n);
};

}  // namespace pqs::core
