#include "core/maintenance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace pqs::core {

double max_tolerable_churn(double eps0, double eps_max, ChurnKind kind,
                           LookupSizing sizing) {
    if (!(eps0 > 0.0 && eps0 < 1.0) || !(eps_max > 0.0 && eps_max < 1.0)) {
        throw std::invalid_argument("epsilons must be in (0, 1)");
    }
    if (eps_max <= eps0) {
        return 0.0;  // already at/beyond the floor
    }
    // degraded bound = eps0^g(f) with g from §6.1; solve g(f) = r where
    // r = ln(eps_max)/ln(eps0) in (0, 1).
    const double r = std::log(eps_max) / std::log(eps0);
    double f = 1.0;
    switch (kind) {
        case ChurnKind::kFailuresOnly:
            // Fixed lookup size never degrades; adjusted: g = sqrt(1-f).
            f = sizing == LookupSizing::kFixed ? 1.0 : 1.0 - r * r;
            break;
        case ChurnKind::kJoinsOnly:
            // Fixed: g = 1/(1+f); adjusted: g = 1/sqrt(1+f).
            f = sizing == LookupSizing::kFixed ? 1.0 / r - 1.0
                                               : 1.0 / (r * r) - 1.0;
            break;
        case ChurnKind::kFailuresAndJoins:
            // g = 1 - f (same for both sizings since n is unchanged).
            f = 1.0 - r;
            break;
    }
    return std::clamp(f, 0.0, 1.0);
}

sim::Time refresh_interval(double eps0, double eps_max, ChurnKind kind,
                           LookupSizing sizing,
                           double churn_fraction_per_sec) {
    if (churn_fraction_per_sec <= 0.0) {
        return sim::kTimeNever;
    }
    const double f = max_tolerable_churn(eps0, eps_max, kind, sizing);
    if (f >= 1.0) {
        return sim::kTimeNever;
    }
    return sim::from_seconds(f / churn_fraction_per_sec);
}

QuorumRefresher::QuorumRefresher(LocationService& service, Params params)
    : service_(service), params_(params) {
    if (params_.explicit_interval) {
        interval_ = *params_.explicit_interval;
    } else {
        const double eps0 = service.biquorum().spec().eps;
        interval_ =
            refresh_interval(eps0, params_.eps_max, params_.churn_kind,
                             params_.sizing, params_.churn_fraction_per_sec);
    }
}

QuorumRefresher::~QuorumRefresher() { stop(); }

void QuorumRefresher::stop() {
    sim::Simulator& simulator = service_.world().simulator();
    for (const auto& [node, id] : timers_) {
        simulator.cancel(id);
    }
    timers_.clear();
}

void QuorumRefresher::start_node(util::NodeId node) {
    if (interval_ == sim::kTimeNever) {
        return;
    }
    sim::Simulator& simulator = service_.world().simulator();
    if (const auto it = timers_.find(node); it != timers_.end()) {
        simulator.cancel(it->second);
    }
    timers_[node] =
        simulator.schedule_in(interval_, [this, node] { tick(node); });
}

void QuorumRefresher::tick(util::NodeId node) {
    sim::Simulator& simulator = service_.world().simulator();
    // A duty-cycled owner caught asleep must DEFER, not refresh: its radio
    // is off, so every advertise the refresh issues would silently fail
    // while still counting as performed and firing on_refresh_ (evicting
    // svc-layer caches for a refresh that never left the node). Retry on
    // a short fuse so the refresh lands soon after the node wakes instead
    // of slipping a whole interval. Checking awake() — not alive() — is
    // the point: asleep is not crashed.
    if (service_.world().alive(node) && !service_.world().awake(node)) {
        ++deferred_;
        ++service_.world().app_stats().refreshes_deferred;
        const sim::Time retry =
            std::max<sim::Time>(interval_ / 10, sim::kMillisecond);
        timers_[node] =
            simulator.schedule_in(retry, [this, node] { tick(node); });
        return;
    }
    // Transient death skips the refresh work but keeps the chain alive so
    // a recovered node resumes refreshing; the idle tick costs one
    // liveness check per interval.
    if (service_.world().alive(node) && !service_.published(node).empty()) {
        service_.refresh(node);
        ++refreshes_;
        if (on_refresh_) {
            on_refresh_(node);
        }
    }
    timers_[node] =
        simulator.schedule_in(interval_, [this, node] { tick(node); });
}

namespace {

std::optional<double> estimate_from_draws(
    const std::vector<util::NodeId>& drawn) {
    if (drawn.size() < 2) {
        return std::nullopt;
    }
    std::unordered_map<util::NodeId, std::size_t> counts;
    std::size_t collisions = 0;
    for (const util::NodeId id : drawn) {
        collisions += counts[id]++;
    }
    if (collisions == 0) {
        return std::nullopt;
    }
    return estimate_network_size(drawn.size(), collisions);
}

}  // namespace

std::optional<double> NetworkSizeEstimator::estimate(util::NodeId node,
                                                     std::size_t samples) {
    std::vector<util::NodeId> drawn;
    drawn.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        const auto one = membership_.sample(node, 1);
        if (!one.empty()) {
            drawn.push_back(one.front());
        }
    }
    return estimate_from_draws(drawn);
}

std::optional<double> NetworkSizeEstimator::estimate_across(
    const std::vector<util::NodeId>& probes, std::size_t rounds) {
    std::vector<util::NodeId> drawn;
    drawn.reserve(probes.size() * rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
        for (const util::NodeId probe : probes) {
            const auto one = membership_.sample(probe, 1);
            if (!one.empty()) {
                drawn.push_back(one.front());
            }
        }
    }
    return estimate_from_draws(drawn);
}

}  // namespace pqs::core
