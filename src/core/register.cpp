#include "core/register.h"

#include <stdexcept>
#include <unordered_map>

namespace pqs::core {

RegisterService::RegisterService(BiquorumSystem& biquorum, util::Key key)
    : biquorum_(biquorum), key_(key) {
    const BiquorumSpec& spec = biquorum.spec();
    if (!spec.lookup.collect_all_replies) {
        throw std::invalid_argument(
            "RegisterService: lookup side must collect_all_replies so reads "
            "observe the highest stored version");
    }
    if (!spec.advertise.monotonic_store) {
        throw std::invalid_argument(
            "RegisterService: advertise side must use monotonic_store so an "
            "older write cannot overwrite a newer one");
    }
}

Versioned highest_versioned(const AccessResult& r, std::size_t b) {
    Value best = 0;
    if (b == 0) {
        for (const Value v : r.values) {
            best = std::max(best, v);
        }
        if (r.value) {
            best = std::max(best, *r.value);
        }
        return unpack(best);
    }
    // b-masking: a forged reply can carry an arbitrarily high version, so
    // only values with > b concurring replies may enter the maximum.
    std::unordered_map<Value, std::size_t> tally;
    for (const Value v : r.values) {
        ++tally[v];
    }
    for (const auto& [value, votes] : tally) {
        if (votes > b) {
            best = std::max(best, value);
        }
    }
    return unpack(best);
}

void RegisterService::read(util::NodeId origin, ReadCallback done,
                           bool write_back) {
    biquorum_.lookup(origin, key_,
                     [this, origin, write_back,
                      done = std::move(done)](const AccessResult& r) {
                         ReadResult result;
                         result.ok = r.ok;
                         result.inconclusive = r.inconclusive;
                         result.value = highest_versioned(
                             r, biquorum_.spec().byzantine_b);
                         if (!write_back || !r.ok) {
                             done(result);
                             return;
                         }
                         // ABD phase 2: propagate what we read so any later
                         // read intersects a quorum that stores it.
                         biquorum_.advertise(
                             origin, key_, pack(result.value),
                             [result, done](const AccessResult&) {
                                 done(result);
                             });
                     });
}

void RegisterService::write(util::NodeId origin, std::uint32_t data,
                            WriteCallback done) {
    // Phase 1: learn the newest version any lookup-quorum member knows.
    biquorum_.lookup(
        origin, key_,
        [this, origin, data, done = std::move(done)](const AccessResult& r) {
            if (r.inconclusive) {
                // Masking failed: the version base cannot be trusted, and
                // writing highest_versioned()+1 could regress the register.
                WriteResult result;
                result.inconclusive = true;
                done(result);
                return;
            }
            const Versioned base =
                highest_versioned(r, biquorum_.spec().byzantine_b);
            if (base.version == kMaxVersion) {
                // Version counter saturated: wrapping to 0 would pack
                // below every stored value, so the monotonic store would
                // drop the write on nodes holding the high version and
                // accept it on nodes that do not — a silent fork. Refuse.
                WriteResult result;
                result.overflow = true;
                result.version = kMaxVersion;
                done(result);
                return;
            }
            const std::uint32_t next_version = base.version + 1;
            // Phase 2: store the new version at an advertise quorum.
            biquorum_.advertise(
                origin, key_, pack(Versioned{next_version, data}),
                [next_version, done](const AccessResult& adv) {
                    WriteResult result;
                    result.ok = adv.ok;
                    result.version = next_version;
                    done(result);
                });
        });
}

}  // namespace pqs::core
