// FLOODING access strategy (§4.4): a TTL-scoped flood from the originator.
// Every node covered by a lookup flood is a quorum member; advertise floods
// make each covered node join the quorum with a configured probability
// (|Q|/n over a whole-network flood, per the paper). Rebroadcasts are
// jittered by up to 10 ms (RFC 5148) to avoid synchronized collisions.
// Replies travel the reverse parent chain recorded by the flood.
// An optional expanding-ring mode re-floods with TTL 1, 2, ... until a hit.
#pragma once

#include <unordered_map>

#include "core/access_strategy.h"

namespace pqs::core {

class FloodingStrategy final : public AccessStrategy {
public:
    FloodingStrategy(ServiceContext& ctx, StrategyConfig config,
                     std::uint32_t tag);

    std::string name() const override { return "FLOODING"; }
    void attach_node(util::NodeId id) override;
    void access(AccessKind kind, util::NodeId origin, util::Key key,
                Value value, obs::TraceId trace,
                AccessCallback done) override;

    struct FloodMsg;
    struct FloodReplyMsg;

    // Measurement-only per-flood state.
    struct FloodTracker {
        std::size_t covered = 0;  // nodes that received the flood
        std::size_t joined = 0;   // nodes that stored (advertise)
        bool hit = false;
    };

private:
    struct OpState {
        AccessKind kind = AccessKind::kLookup;
        util::Key key = 0;
        Value value = 0;
        int round_ttl = 0;  // current TTL (expanding ring)
        std::shared_ptr<FloodTracker> tracker;
        obs::TraceId trace = 0;
    };

    void launch_round(util::AccessId op, util::NodeId origin, int ttl);
    void handle_flood(util::NodeId id, util::NodeId prev,
                      std::shared_ptr<const FloodMsg> msg);
    void send_reply_chain(util::NodeId id, const FloodMsg& msg, Value value);
    sim::Time settle_time(int ttl) const;

    OpTable<OpState> ops_;
    util::Rng rng_;
    // parent[node][flood round id] = the neighbor the flood arrived from.
    // Round ids distinguish expanding-ring rounds of the same op.
    struct RoundKey {
        util::AccessId op;
        int ttl;
        friend bool operator==(const RoundKey&, const RoundKey&) = default;
    };
    struct RoundKeyHash {
        std::size_t operator()(const RoundKey& k) const noexcept {
            return std::hash<util::AccessId>{}(k.op) ^
                   (static_cast<std::size_t>(k.ttl) * 0x9e3779b97f4a7c15ULL);
        }
    };
    std::vector<std::unordered_map<RoundKey, util::NodeId, RoundKeyHash>>
        parents_;
};

}  // namespace pqs::core
