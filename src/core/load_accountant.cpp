#include "core/load_accountant.h"

#include <algorithm>

namespace pqs::core {

double LoadAccountant::max_access_probability() const {
    const std::uint64_t denominator = access_denominator();
    if (denominator == 0 || touches_.empty()) {
        return 0.0;
    }
    const std::uint64_t busiest =
        *std::max_element(touches_.begin(), touches_.end());
    return static_cast<double>(busiest) / static_cast<double>(denominator);
}

}  // namespace pqs::core
