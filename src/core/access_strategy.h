// Base machinery for quorum access strategies (§4): the shared service
// context, the strategy interface, the direct-access messages used by
// RANDOM / RANDOM-OPT, and a small pending-operation table with timeouts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/lease.h"
#include "core/load_accountant.h"
#include "core/metrics.h"
#include "core/quorum_spec.h"
#include "core/reply_path.h"
#include "core/store.h"
#include "membership/membership.h"
#include "net/world.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/ids.h"

namespace pqs::core {

enum class AccessKind { kAdvertise, kLookup };

// Stores an advertised value, honoring the monotonic (versioned) policy.
inline void apply_advertise(LocalStore& store, util::Key key, Value value,
                            bool monotonic) {
    if (monotonic) {
        const std::optional<Value> current = store.find(key);
        if (current && *current >= value) {
            return;  // never let an older version overwrite a newer one
        }
    }
    store.store_owner(key, value);
}

// Operation-level retry (§6.1 under live churn): a failed or timed-out
// access is re-issued from the same origin after an exponentially growing
// backoff, as long as the origin itself is still alive. max_attempts = 1
// disables retries (the default; keeps every existing experiment's
// behavior and RNG stream untouched).
struct RetryPolicy {
    int max_attempts = 1;
    sim::Time backoff = 500 * sim::kMillisecond;
    double backoff_factor = 2.0;
};

// Shared state all strategies operate against. Owned by LocationService.
struct ServiceContext {
    net::World& world;
    membership::MembershipService* membership = nullptr;
    ReplyPathRouter* reply_router = nullptr;
    sim::Time op_timeout = 30 * sim::kSecond;
    RetryPolicy retry;
    // Timed quorums: every stored value lives `value_lease` from its last
    // (re-)advertise, then its holder evicts it. <= 0 disables leases —
    // no expiry events are ever scheduled, keeping existing experiments'
    // event streams untouched.
    sim::Time value_lease = 0;
    std::vector<LocalStore> stores;
    // §3 "Load" / MRW: per-node quorum-service counts and the top-level
    // access count, from which the L(S) = max access probability estimate
    // falls out (see core/load_accountant.h).
    LoadAccountant load;
    LeaseManager leases;

    explicit ServiceContext(net::World& w)
        : world(w), leases(w.simulator(), &stores) {
        leases.set_expire_counter(&w.app_stats().lease_expirations);
    }

    LocalStore& store(util::NodeId id) {
        if (id >= stores.size()) {
            stores.resize(id + 1);
        }
        return stores[id];
    }

    // Advertise-path store: honors the monotonic policy and (re-)arms the
    // value's lease. Every holder-side store funnels through here so a
    // leased value cannot survive past its deadline anywhere.
    void store_value(util::NodeId at, util::Key key, Value value,
                     bool monotonic) {
        apply_advertise(store(at), key, value, monotonic);
        leases.arm(at, key, value_lease);
    }

    // Bystander cache fill (biquorum relays, §7.1): leased like any other
    // copy — an expired value must disappear from caches too.
    void cache_value(util::NodeId at, util::Key key, Value value) {
        store(at).store_bystander(key, value);
        leases.arm(at, key, value_lease);
    }

    void count_load(util::NodeId id) {
        load.count_touch(id);
        ++world.app_stats().quorum_loads_counted;
    }
};

struct LoadSummary {
    double mean = 0.0;
    double max = 0.0;
    // Coefficient of variation (stddev/mean): 0 = perfectly balanced.
    double cv = 0.0;
    // MRW load L(S): the busiest alive node's touches over total accesses.
    double mrw_load = 0.0;
};

// Load statistics over the currently-alive nodes.
LoadSummary summarize_load(const ServiceContext& ctx);

// Shared one-bit probe: did this access touch a node holding the key?
// Written by remote handlers, read by the originator at resolve time
// (measurement only; mirrors Fig. 13's intersection-vs-reply split).
struct IntersectionProbe {
    bool intersected = false;
};

// Direct quorum access (RANDOM, RANDOM-OPT): ask `target` to store or look
// up a key; routed over AODV.
struct QuorumRequestMsg final : net::AppMessage {
    std::uint32_t strategy_tag = 0;
    util::AccessId op;
    AccessKind kind = AccessKind::kLookup;
    util::Key key = 0;
    Value value = 0;
    util::NodeId origin = util::kInvalidNode;
    bool want_reply = true;       // lookups ask for a routed reply on hit
    bool want_miss_reply = false; // serial lookups also want negative replies
    std::shared_ptr<IntersectionProbe> probe;

    std::size_t size_bytes() const override { return 512; }
};

// Routed lookup reply (RANDOM, RANDOM-OPT).
struct QuorumReplyMsg final : net::AppMessage {
    std::uint32_t strategy_tag = 0;
    util::AccessId op;
    util::Key key = 0;
    Value value = 0;
    bool found = false;
    util::NodeId responder = util::kInvalidNode;

    std::size_t size_bytes() const override { return 64; }
};

// Pending operations with timeout and single resolution.
//
// find()/open() hand out generation-checked Handles rather than raw
// pointers: a resolve (including one triggered reentrantly by a
// synchronous send_routed/deliver chain) bumps the entry out of the
// table, and any handle acquired before it aborts under PQS_DCHECK on
// its next dereference instead of silently reading freed memory. After
// any call that can re-enter the service, re-find() the op.
template <typename State>
class OpTable {
public:
    explicit OpTable(sim::Simulator& simulator) : simulator_(simulator) {}

    // Ops still pending at teardown hold scheduled timeout events whose
    // callbacks capture this table; cancel them so destroying a strategy
    // (and the service that owns it) mid-operation cannot leave the
    // simulator holding callbacks into freed memory.
    ~OpTable() {
        for (auto& [id, entry] : ops_) {
            if (entry.timer != sim::kInvalidEvent) {
                simulator_.cancel(entry.timer);
            }
        }
    }

    OpTable(const OpTable&) = delete;
    OpTable& operator=(const OpTable&) = delete;

    // Visits every pending op's state — used by strategy destructors to
    // cancel per-op timers they scheduled beside the table's own timeout.
    template <typename Fn>
    void for_each_state(Fn&& fn) {
        for (auto& [id, entry] : ops_) {
            fn(entry.state);
        }
    }

    struct Entry {
        State state{};
        AccessCallback callback;
        sim::Time started = 0;
        sim::EventId timer = sim::kInvalidEvent;
        std::uint64_t generation = 0;
    };

    class Handle {
    public:
        Handle() = default;

        // True when the lookup succeeded. Staleness is checked on
        // dereference, not here: re-find() is the way to re-validate.
        explicit operator bool() const { return entry_ != nullptr; }

        Entry* operator->() const {
            check_live();
            return entry_;
        }
        Entry& operator*() const {
            check_live();
            return *entry_;
        }

        // A handle whose entry has been resolved (or reopened) since
        // acquisition. Debug-only diagnostic; release builds skip it.
        bool stale() const {
            return entry_ != nullptr &&
                   table_->generation_of(id_) != generation_;
        }

    private:
        friend class OpTable;
        Handle(OpTable* table, util::AccessId id, Entry* entry)
            : table_(table), id_(id), entry_(entry),
              generation_(entry->generation) {}

        void check_live() const {
            PQS_DCHECK(entry_ != nullptr,
                       "dereference of empty OpTable handle");
            PQS_DCHECK(!stale(),
                       "stale OpTable handle for op origin="
                           << id_.origin << " seq=" << id_.seq
                           << " — the entry was resolved across a reentrant "
                              "send/deliver; re-find() it instead of holding "
                              "the handle");
        }

        OpTable* table_ = nullptr;
        util::AccessId id_{};
        Entry* entry_ = nullptr;
        std::uint64_t generation_ = 0;
    };

    // Opens an op. On timeout the op resolves with a default result marked
    // timed_out, after `timeout_fill` (if given) patched in what is known
    // (e.g. the intersection probe).
    Handle open(util::AccessId id, AccessCallback callback, sim::Time timeout,
                std::function<void(AccessResult&)> timeout_fill = {}) {
        Entry& entry = ops_[id];
        entry.callback = std::move(callback);
        entry.started = simulator_.now();
        entry.generation = next_generation_++;
        entry.timer = simulator_.schedule_in(
            timeout, [this, id, fill = std::move(timeout_fill)] {
                AccessResult result;
                result.timed_out = true;
                if (fill) {
                    fill(result);
                }
                resolve(id, result);
            });
        return Handle(this, id, &entry);
    }

    Handle find(util::AccessId id) {
        const auto it = ops_.find(id);
        if (it == ops_.end()) {
            return Handle();
        }
        return Handle(this, id, &it->second);
    }

    // Generation currently stored for `id`; 0 when the op is not open.
    // Generations start at 1, so 0 never matches a live handle.
    std::uint64_t generation_of(util::AccessId id) const {
        const auto it = ops_.find(id);
        return it == ops_.end() ? 0 : it->second.generation;
    }

    // Resolves and erases; fills latency. No-op if already resolved.
    bool resolve(util::AccessId id, AccessResult result) {
        const auto it = ops_.find(id);
        if (it == ops_.end()) {
            return false;
        }
        Entry entry = std::move(it->second);
        ops_.erase(it);
        if (entry.timer != sim::kInvalidEvent) {
            simulator_.cancel(entry.timer);
        }
        result.latency = simulator_.now() - entry.started;
        if (entry.callback) {
            entry.callback(result);
        }
        return true;
    }

    std::size_t size() const { return ops_.size(); }

private:
    sim::Simulator& simulator_;
    std::unordered_map<util::AccessId, Entry> ops_;
    std::uint64_t next_generation_ = 1;
};

class AccessStrategy {
public:
    AccessStrategy(ServiceContext& ctx, StrategyConfig config,
                   std::uint32_t tag)
        : ctx_(ctx), config_(config), tag_(tag) {}
    virtual ~AccessStrategy() = default;
    AccessStrategy(const AccessStrategy&) = delete;
    AccessStrategy& operator=(const AccessStrategy&) = delete;

    virtual std::string name() const = 0;

    // Installs this strategy's handlers on node `id`; called for every
    // existing node at service construction and for late joiners.
    virtual void attach_node(util::NodeId id) = 0;

    // Performs one quorum access of the configured kind from `origin`.
    // `trace` (0 = untraced) tags every message the access generates so
    // hop-level events land in the op's span.
    virtual void access(AccessKind kind, util::NodeId origin, util::Key key,
                        Value value, obs::TraceId trace,
                        AccessCallback done) = 0;

    // Like access(), but aimed at a caller-provided target set (a cached
    // quorum) instead of a fresh random pick. Strategies without a notion
    // of explicit targets ignore the hint and fall back to access().
    // Directed accesses must NOT self-heal around dead targets (no §6.2
    // replacements): a stale cache entry has to miss so the caller can
    // detect it and re-resolve.
    virtual void access_directed(AccessKind kind, util::NodeId origin,
                                 util::Key key, Value value,
                                 const std::vector<util::NodeId>& /*targets*/,
                                 obs::TraceId trace, AccessCallback done) {
        access(kind, origin, key, value, trace, std::move(done));
    }

    // Reverse-path reply addressed to one of this strategy's ops.
    virtual void on_reverse_reply(util::NodeId /*origin*/,
                                  const ReverseReplyMsg& /*msg*/) {}

    const StrategyConfig& config() const { return config_; }
    std::uint32_t tag() const { return tag_; }

    // Adapts the target quorum size at runtime (e.g. to a new network-size
    // estimate, §6.1/§6.3). Affects subsequent accesses only.
    void set_quorum_size(std::size_t q) { config_.quorum_size = q; }

protected:
    util::AccessId next_op(util::NodeId origin) {
        return util::AccessId{origin, next_seq_++};
    }

    ServiceContext& ctx_;
    StrategyConfig config_;
    std::uint32_t tag_;
    util::SeqNum next_seq_ = 1;
};

// Instantiates the strategy implementation selected by `config.kind`.
std::unique_ptr<AccessStrategy> make_strategy(ServiceContext& ctx,
                                              StrategyConfig config,
                                              std::uint32_t tag);

}  // namespace pqs::core
