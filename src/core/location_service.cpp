#include "core/location_service.h"

#include <algorithm>
#include <vector>

namespace pqs::core {

LocationService::LocationService(net::World& world, BiquorumSpec spec,
                                 membership::MembershipService* membership)
    : world_(world), biquorum_(world, spec, membership) {
    published_.resize(world.node_count());
}

void LocationService::advertise(util::NodeId origin, util::Key key,
                                Value value, AccessCallback done) {
    if (origin >= published_.size()) {
        published_.resize(origin + 1);
    }
    published_[origin][key] = value;
    biquorum_.advertise(origin, key, value, std::move(done));
}

void LocationService::record_published(util::NodeId origin, util::Key key,
                                       Value value) {
    if (origin >= published_.size()) {
        published_.resize(origin + 1);
    }
    published_[origin][key] = value;
}

void LocationService::lookup(util::NodeId origin, util::Key key,
                             AccessCallback done) {
    biquorum_.lookup(origin, key, std::move(done));
}

void LocationService::refresh(util::NodeId origin,
                              AccessCallback per_key_done) {
    if (origin >= published_.size()) {
        return;
    }
    // Advertise in sorted key order: unordered_map iteration order is an
    // implementation detail, and each advertise consumes RNG draws, so the
    // order must be pinned for runs to be bit-identical across platforms.
    std::vector<util::Key> keys;
    keys.reserve(published_[origin].size());
    for (const auto& [key, value] : published_[origin]) {
        keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    for (const util::Key key : keys) {
        biquorum_.advertise(origin, key, published_[origin].at(key),
                            per_key_done);
    }
}

const std::unordered_map<util::Key, Value>& LocationService::published(
    util::NodeId node) const {
    return node < published_.size() ? published_[node] : empty_;
}

}  // namespace pqs::core
