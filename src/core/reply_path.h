// Reverse-path reply delivery shared by the random-walk based strategies
// (PATH, UNIQUE-PATH, sampling-RANDOM) and FLOODING. Implements the
// paper's three reply techniques:
//  - reply-path reduction (§7.2): skip ahead to the furthest node of the
//    recorded path that is currently a direct neighbor;
//  - reply-path local repair (§6.2): when a hop breaks (no MAC ack), try
//    the next nodes along the path through TTL-limited routing;
//  - global repair fallback (§6.2): if the scoped repair exhausts the path,
//    route to the origin with unrestricted discovery (or drop, per config).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/metrics.h"
#include "net/packet.h"
#include "net/world.h"
#include "util/ids.h"

namespace pqs::core {

// Measurement-only shared state for one reply (never read by protocols).
struct ReplyTracker {
    bool delivered = false;
    bool dropped = false;
    std::size_t repairs = 0;
    std::function<void()> on_dropped;

    void mark_dropped() {
        if (!delivered && !dropped) {
            dropped = true;
            if (on_dropped) {
                on_dropped();
            }
        }
    }
};

struct ReplyOptions {
    bool path_reduction = true;
    bool local_repair = true;
    int repair_ttl = 3;
    bool global_fallback = true;
    // §7.1: relay nodes keep a bystander copy of the mapping they carry.
    bool cache_at_relays = false;
};

// The reply message, retracing the recorded forward path.
struct ReverseReplyMsg final : net::AppMessage {
    std::uint32_t strategy_tag = 0;
    util::AccessId op;
    util::Key key = 0;
    Value value = 0;
    // Remaining nodes to traverse, in order; back() is the lookup origin.
    std::vector<util::NodeId> hops;
    ReplyOptions options;
    std::shared_ptr<ReplyTracker> tracker;

    std::size_t size_bytes() const override { return 64 + 4 * hops.size(); }
};

class ReplyPathRouter {
public:
    using DeliverFn = std::function<void(util::NodeId origin,
                                         const ReverseReplyMsg& msg)>;
    using CacheFn =
        std::function<void(util::NodeId at, util::Key key, Value value)>;

    explicit ReplyPathRouter(net::World& world) : world_(world) {}

    void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
    // Invoked at every relay node of replies whose options request caching.
    void set_cache(CacheFn fn) { cache_ = std::move(fn); }

    // Installs the app handler on `id` (call for every node).
    void attach_node(util::NodeId id);

    // Starts a reply at `at`. `forward_path` is the walk's path from the
    // origin to `at` inclusive (front() == origin); the reply retraces it.
    // `trace` tags the reply with the originating op's span (0 = untraced).
    void start_reply(util::NodeId at, std::uint32_t strategy_tag,
                     util::AccessId op, util::Key key, Value value,
                     const std::vector<util::NodeId>& forward_path,
                     ReplyOptions options,
                     std::shared_ptr<ReplyTracker> tracker,
                     obs::TraceId trace = 0);

private:
    void forward(util::NodeId at, std::shared_ptr<const ReverseReplyMsg> msg);
    void repair(util::NodeId at, std::shared_ptr<const ReverseReplyMsg> msg,
                std::size_t hop_index);

    net::World& world_;
    DeliverFn deliver_;
    CacheFn cache_;
};

}  // namespace pqs::core
