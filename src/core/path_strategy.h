// PATH and UNIQUE-PATH access strategies (§4.2, §4.3): a single random walk
// traverses the network until it has visited |Q| distinct nodes, acting on
// every node it visits. UNIQUE-PATH walks are self-avoiding (step to an
// unvisited neighbor when one exists). Implements the paper's systems
// techniques:
//  - RW salvation (§6.2): a failed hop is retried through another neighbor
//    within the same step;
//  - early halting (§7.1): a lookup stops at the first node holding the key;
//  - reverse-path replies with path reduction, TTL-scoped local repair and
//    global fallback (§6.2, §7.2) via the shared ReplyPathRouter;
//  - bystander caching of advertisements passing through (§7.1).
#pragma once

#include <memory>

#include "core/access_strategy.h"

namespace pqs::core {

// Measurement-only shared state of one walk.
struct WalkTracker {
    std::size_t unique = 0;    // distinct nodes visited so far
    std::size_t steps = 0;     // transmissions spent on the walk
    bool hit = false;          // lookup touched a node holding the key
    bool covered = false;      // reached the target quorum size
    bool died = false;         // ran out of usable neighbors / salvage
    bool halted = false;       // stopped externally (overhearing, §7.2)
    std::function<void()> on_terminal;  // fires once when the walk ends

    void terminal() {
        if (on_terminal) {
            auto fn = std::move(on_terminal);
            on_terminal = nullptr;
            fn();
        }
    }
};

class PathStrategy final : public AccessStrategy {
public:
    // unique=false => PATH (simple walk); true => UNIQUE-PATH.
    PathStrategy(ServiceContext& ctx, StrategyConfig config,
                 std::uint32_t tag, bool unique);

    std::string name() const override {
        return unique_ ? "UNIQUE-PATH" : "PATH";
    }
    void attach_node(util::NodeId id) override;
    void access(AccessKind kind, util::NodeId origin, util::Key key,
                Value value, obs::TraceId trace,
                AccessCallback done) override;
    void on_reverse_reply(util::NodeId origin,
                          const ReverseReplyMsg& msg) override;

    struct WalkMsg;

private:
    struct OpState {
        AccessKind kind = AccessKind::kLookup;
        util::Key key = 0;
        std::shared_ptr<WalkTracker> tracker;
        std::shared_ptr<ReplyTracker> reply_tracker;
    };

    void visit(util::NodeId at, std::shared_ptr<const WalkMsg> msg);
    void forward(util::NodeId at, std::shared_ptr<const WalkMsg> msg,
                 int salvage_left,
                 std::vector<util::NodeId> excluded_hops);

    bool unique_;
    OpTable<OpState> ops_;
    util::Rng rng_;
};

}  // namespace pqs::core
