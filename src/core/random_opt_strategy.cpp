#include "core/random_opt_strategy.h"

#include <algorithm>

#include "net/node_stack.h"

namespace pqs::core {

namespace {
constexpr sim::Time kReplyGrace = 3 * sim::kSecond;
}

RandomOptStrategy::RandomOptStrategy(ServiceContext& ctx,
                                     StrategyConfig config, std::uint32_t tag)
    : AccessStrategy(ctx, config, tag),
      ops_(ctx.world.simulator()),
      rng_(ctx.world.rng().fork()) {}

RandomOptStrategy::~RandomOptStrategy() {
    ops_.for_each_state([this](OpState& state) {
        if (state.grace_timer != sim::kInvalidEvent) {
            ctx_.world.simulator().cancel(state.grace_timer);
            state.grace_timer = sim::kInvalidEvent;
        }
    });
}

bool RandomOptStrategy::act_on_request(util::NodeId id,
                                       const QuorumRequestMsg& req) {
    LocalStore& store = ctx_.store(id);
    ctx_.count_load(id);
    obs::record(req.trace, obs::EventKind::kQuorumMemberReached, id);
    if (req.kind == AccessKind::kAdvertise) {
        // Every traversed node joins the advertise quorum (§4.5).
        ctx_.store_value(id, req.key, req.value, config_.monotonic_store);
        return false;
    }
    const std::optional<Value> found = store.find(req.key);
    if (!found) {
        return false;
    }
    if (req.probe) {
        req.probe->intersected = true;
    }
    auto reply = std::make_shared<QuorumReplyMsg>();
    reply->trace = req.trace;
    reply->strategy_tag = tag_;
    reply->op = req.op;
    reply->key = req.key;
    reply->found = true;
    reply->value = *found;
    reply->responder = id;
    ctx_.world.stack(id).send_routed(req.origin, reply, nullptr);
    return true;
}

void RandomOptStrategy::attach_node(util::NodeId id) {
    net::NodeStack& stack = ctx_.world.stack(id);
    stack.add_app_handler(
        [this, id](util::NodeId, util::NodeId, const net::AppMsgPtr& msg) {
            if (const auto req =
                    std::dynamic_pointer_cast<const QuorumRequestMsg>(msg);
                req && req->strategy_tag == tag_) {
                act_on_request(id, *req);
                return true;
            }
            if (const auto reply =
                    std::dynamic_pointer_cast<const QuorumReplyMsg>(msg);
                reply && reply->strategy_tag == tag_) {
                if (reply->found) {
                    finish(reply->op, true, reply->value);
                }
                return true;
            }
            return false;
        });
    // The cross-layer hook: inspect data packets this node merely forwards.
    stack.add_snoop_handler([this, id](const net::Packet& packet) {
        const auto req = std::dynamic_pointer_cast<const QuorumRequestMsg>(
            packet.data().app);
        if (!req || req->strategy_tag != tag_) {
            return false;
        }
        const bool absorbed = act_on_request(id, *req);
        if (absorbed) {
            // The request stops here; from the origin's perspective the
            // send resolved (it reached a quorum member).
            obs::record(req->trace, obs::EventKind::kEarlyHalt, id);
            on_target_resolved(req->op, true);
        }
        return absorbed;
    });
}

void RandomOptStrategy::access(AccessKind kind, util::NodeId origin,
                               util::Key key, Value value,
                               obs::TraceId trace, AccessCallback done) {
    const util::AccessId op = next_op(origin);
    auto probe = std::make_shared<IntersectionProbe>();
    auto entry = ops_.open(op, std::move(done), ctx_.op_timeout,
                            [probe](AccessResult& r) {
                                r.intersected = probe->intersected;
                            });
    entry->state.kind = kind;
    entry->state.key = key;
    entry->state.value = value;
    entry->state.probe = std::move(probe);
    entry->state.trace = trace;

    std::vector<util::NodeId> targets;
    if (ctx_.membership != nullptr) {
        targets = ctx_.membership->sample(origin, config_.quorum_size);
    } else {
        const util::AliveSet& alive = ctx_.world.alive_set();
        const std::size_t take =
            std::min<std::size_t>(config_.quorum_size, alive.count());
        for (const std::size_t idx :
             rng_.sample_without_replacement(alive.count(), take)) {
            targets.push_back(alive.select(idx));
        }
    }
    if (targets.empty()) {
        finish(op, false, 0);
        return;
    }
    // Fill in every counter before the first send: send_routed can deliver
    // locally and complete the op synchronously (reply -> finish -> resolve),
    // which erases the ops_ entry and would invalidate `entry` mid-loop.
    entry->state.targets = targets.size();
    entry->state.outstanding = targets.size();
    entry->state.all_sent = true;
    const std::shared_ptr<IntersectionProbe> op_probe = entry->state.probe;
    for (const util::NodeId target : targets) {
        auto msg = std::make_shared<QuorumRequestMsg>();
        msg->trace = trace;
        msg->strategy_tag = tag_;
        msg->op = op;
        msg->kind = kind;
        msg->key = key;
        msg->value = value;
        msg->origin = origin;
        msg->want_reply = kind == AccessKind::kLookup;
        msg->probe = op_probe;
        ctx_.world.stack(origin).send_routed(
            target, msg,
            [this, op](bool delivered) { on_target_resolved(op, delivered); });
    }
}

void RandomOptStrategy::on_target_resolved(util::AccessId op,
                                           bool delivered) {
    auto entry = ops_.find(op);
    if (!entry) {
        return;
    }
    if (entry->state.outstanding > 0) {
        --entry->state.outstanding;
    }
    if (delivered) {
        ++entry->state.delivered;
    }
    maybe_finish(op);
}

void RandomOptStrategy::maybe_finish(util::AccessId op) {
    auto entry = ops_.find(op);
    if (!entry || !entry->state.all_sent ||
        entry->state.outstanding > 0) {
        return;
    }
    OpState& state = entry->state;
    if (state.kind == AccessKind::kAdvertise) {
        finish(op, state.delivered == state.targets, 0);
        return;
    }
    if (state.grace_timer == sim::kInvalidEvent) {
        state.grace_timer = ctx_.world.simulator().schedule_in(
            kReplyGrace, [this, op] {
                if (auto e = ops_.find(op)) {
                    e->state.grace_timer = sim::kInvalidEvent;
                }
                finish(op, false, 0);
            });
    }
}

void RandomOptStrategy::finish(util::AccessId op, bool hit, Value value) {
    auto entry = ops_.find(op);
    if (!entry) {
        return;
    }
    OpState& state = entry->state;
    // A hit reply can beat the armed grace timer; the pending event holds
    // `this`, so it must not survive the op (or the strategy).
    if (state.grace_timer != sim::kInvalidEvent) {
        ctx_.world.simulator().cancel(state.grace_timer);
        state.grace_timer = sim::kInvalidEvent;
    }
    AccessResult result;
    result.ok = hit;
    result.intersected = hit || (state.probe && state.probe->intersected);
    if (hit && state.kind == AccessKind::kLookup) {
        result.value = value;
    }
    result.nodes_contacted = state.delivered;
    ops_.resolve(op, result);
}

}  // namespace pqs::core
