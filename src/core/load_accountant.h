// Per-node access-load accounting in the Malkhi-Reiter-Wool framework
// ("The Load and Availability of Byzantine Quorum Systems"): the load
// L(S) a strategy induces is the access probability of the busiest node.
// The accountant tracks, per node, how many quorum requests it served
// (touches) and how many top-level accesses were issued overall, so
// L(S) is estimated as max_i touches(i)/accesses. Touch increments are
// mirrored into KernelStats (quorum_loads_counted) by ServiceContext.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace pqs::core {

class LoadAccountant {
public:
    // One top-level quorum access (advertise or lookup) was issued.
    void count_access() { ++accesses_; }

    // Node `id` served a quorum request (stored an advertise, answered or
    // checked a lookup).
    void count_touch(util::NodeId id) {
        if (id >= touches_.size()) {
            touches_.resize(id + 1, 0);
        }
        ++touches_[id];
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t touches(util::NodeId id) const {
        return id < touches_.size() ? touches_[id] : 0;
    }
    const std::vector<std::uint64_t>& touch_table() const { return touches_; }

    // MRW load estimate: the empirical access probability of the busiest
    // node, max_i touches(i)/accesses. 0 before any access.
    double max_access_probability() const;

private:
    std::vector<std::uint64_t> touches_;
    std::uint64_t accesses_ = 0;
};

}  // namespace pqs::core
