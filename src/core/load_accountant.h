// Per-node access-load accounting in the Malkhi-Reiter-Wool framework
// ("The Load and Availability of Byzantine Quorum Systems"): the load
// L(S) a strategy induces is the access probability of the busiest node.
// The accountant tracks, per node, how many quorum requests it served
// (touches) and how many top-level accesses were issued overall, so
// L(S) is estimated as max_i touches(i)/accesses. Touch increments are
// mirrored into KernelStats (quorum_loads_counted) by ServiceContext.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace pqs::core {

class LoadAccountant {
public:
    // One top-level quorum access (advertise or lookup) was issued.
    void count_access() { ++accesses_; }

    // A previously issued access reached its final resolution (success,
    // miss, or timeout — all of them resolve; only ops still in flight at
    // teardown never do). Keeping issue and resolution separate stops
    // open-loop overload runs from flattering L(S): an in-flight access
    // has already touched nodes, so it must not pad the denominator.
    void count_access_resolved() { ++resolved_; }

    // Node `id` served a quorum request (stored an advertise, answered or
    // checked a lookup).
    void count_touch(util::NodeId id) {
        if (id >= touches_.size()) {
            touches_.resize(id + 1, 0);
        }
        ++touches_[id];
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t resolved() const { return resolved_; }
    std::uint64_t touches(util::NodeId id) const {
        return id < touches_.size() ? touches_[id] : 0;
    }
    const std::vector<std::uint64_t>& touch_table() const { return touches_; }

    // Denominator for L(S): resolved accesses when any resolution was
    // recorded, else the issue count (callers that never wire resolution
    // keep the historical behavior; fully-resolved runs are identical
    // either way since resolved == accesses there).
    std::uint64_t access_denominator() const {
        return resolved_ > 0 ? resolved_ : accesses_;
    }

    // MRW load estimate: the empirical access probability of the busiest
    // node, max_i touches(i)/access_denominator(). 0 before any access.
    double max_access_probability() const;

private:
    std::vector<std::uint64_t> touches_;
    std::uint64_t accesses_ = 0;
    std::uint64_t resolved_ = 0;
};

}  // namespace pqs::core
