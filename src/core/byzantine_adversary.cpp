#include "core/byzantine_adversary.h"

#include <memory>

#include "core/access_strategy.h"
#include "core/reply_path.h"
#include "obs/trace.h"

namespace pqs::core {

namespace {
std::uint64_t splitmix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
}  // namespace

ByzantineAdversary::ByzantineAdversary(net::World& world,
                                       sim::ByzantinePlan& plan)
    : world_(world), plan_(plan) {
    world_.set_tamper(this);
}

ByzantineAdversary::~ByzantineAdversary() {
    if (world_.tamper() == this) {
        world_.set_tamper(nullptr);
    }
}

Value ByzantineAdversary::fabricate(util::Key key) {
    return splitmix(key ^ 0xb1a5ed4e55ULL);
}

bool ByzantineAdversary::tamper_value(sim::ByzantineBehavior behavior,
                                      util::Key key, Value& value,
                                      bool found) {
    if (found) {
        first_seen_.emplace(key, value);  // emplace keeps the oldest
    }
    sim::ByzantinePlan::Counters& counters = plan_.counters();
    switch (behavior) {
        case sim::ByzantineBehavior::kDropReply:
            ++counters.replies_dropped;
            ++world_.app_stats().byzantine_tampers;
            return false;
        case sim::ByzantineBehavior::kLieStale: {
            const auto it = first_seen_.find(key);
            if (it == first_seen_.end() || (found && it->second == value)) {
                return true;  // nothing staler to tell yet
            }
            ++counters.replies_stale;
            ++world_.app_stats().byzantine_tampers;
            value = it->second;
            return true;
        }
        case sim::ByzantineBehavior::kLieFabricate:
            ++counters.replies_fabricated;
            ++world_.app_stats().byzantine_tampers;
            value = fabricate(key);
            return true;
        case sim::ByzantineBehavior::kReplay: {
            const auto it = last_reply_.find(key);
            if (it == last_reply_.end()) {
                if (found) {
                    last_reply_.emplace(key, value);
                }
                return true;  // nothing captured yet: first reply is honest
            }
            const Value replayed = it->second;
            if (found) {
                it->second = value;  // capture for the next replay
            }
            if (replayed == value) {
                return true;  // the replay happens to be current
            }
            ++counters.replies_replayed;
            ++world_.app_stats().byzantine_tampers;
            value = replayed;
            return true;
        }
    }
    return true;
}

bool ByzantineAdversary::on_reply_value(util::NodeId at, std::uint64_t key,
                                        std::uint64_t& value,
                                        std::uint64_t trace) {
    if (!plan_.faulty(at)) {
        return true;
    }
    const sim::ByzantineBehavior behavior = plan_.behavior(at);
    if (!tamper_value(behavior, key, value, /*found=*/true)) {
        obs::record(trace, obs::EventKind::kFaultyReplySuppressed, at,
                    static_cast<std::uint64_t>(behavior), key);
        return false;
    }
    return true;
}

bool ByzantineAdversary::on_lookup_miss(util::NodeId at, std::uint64_t key,
                                        std::uint64_t& forged_value) {
    if (!plan_.faulty(at)) {
        return false;
    }
    sim::ByzantinePlan::Counters& counters = plan_.counters();
    switch (plan_.behavior(at)) {
        case sim::ByzantineBehavior::kDropReply:
            return false;  // silence is this behavior's whole repertoire
        case sim::ByzantineBehavior::kLieStale: {
            const auto it = first_seen_.find(key);
            if (it == first_seen_.end()) {
                return false;  // nothing observed to lie about yet
            }
            forged_value = it->second;
            ++counters.replies_stale;
            break;
        }
        case sim::ByzantineBehavior::kLieFabricate:
            forged_value = fabricate(key);
            ++counters.replies_fabricated;
            break;
        case sim::ByzantineBehavior::kReplay: {
            const auto it = last_reply_.find(key);
            if (it == last_reply_.end()) {
                return false;  // nothing captured to replay yet
            }
            forged_value = it->second;
            ++counters.replies_replayed;
            break;
        }
    }
    ++world_.app_stats().byzantine_tampers;
    ++miss_lies_in_flight_[key];  // consumed by the send that follows
    return true;
}

net::TamperVerdict ByzantineAdversary::on_send(util::NodeId at,
                                               const net::AppMsgPtr& msg,
                                               net::AppMsgPtr& forged) {
    if (!plan_.faulty(at)) {
        return net::TamperVerdict::kPass;
    }
    const sim::ByzantineBehavior behavior = plan_.behavior(at);
    if (const auto* reply = dynamic_cast<const QuorumReplyMsg*>(msg.get())) {
        const auto in_flight = miss_lies_in_flight_.find(reply->key);
        if (in_flight != miss_lies_in_flight_.end()) {
            // A miss-forged reply of our own making: already tampered and
            // counted in on_lookup_miss.
            if (--in_flight->second == 0) {
                miss_lies_in_flight_.erase(in_flight);
            }
            return net::TamperVerdict::kPass;
        }
        Value value = reply->value;
        if (!tamper_value(behavior, reply->key, value, reply->found)) {
            obs::record(reply->trace, obs::EventKind::kFaultyReplySuppressed,
                        at, static_cast<std::uint64_t>(behavior), reply->key);
            return net::TamperVerdict::kDrop;
        }
        if (value == reply->value) {
            return net::TamperVerdict::kPass;
        }
        auto lie = std::make_shared<QuorumReplyMsg>(*reply);
        lie->value = value;
        lie->found = true;  // a forged miss becomes a confident hit
        forged = std::move(lie);
        return net::TamperVerdict::kReplace;
    }
    if (dynamic_cast<const ReverseReplyMsg*>(msg.get()) != nullptr) {
        // In-transit walk reply at a faulty relay. Value forging happened
        // at origination (on_reply_value); a relay can only discard —
        // forging other nodes' replies would let the adversary cast more
        // than b votes and break the masking-budget accounting.
        if (behavior == sim::ByzantineBehavior::kDropReply) {
            ++plan_.counters().replies_dropped;
            ++world_.app_stats().byzantine_tampers;
            obs::record(msg->trace, obs::EventKind::kFaultyReplySuppressed,
                        at, static_cast<std::uint64_t>(behavior));
            return net::TamperVerdict::kDrop;
        }
    }
    return net::TamperVerdict::kPass;
}

}  // namespace pqs::core
