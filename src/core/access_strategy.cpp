#include "core/access_strategy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/flooding_strategy.h"
#include "core/path_strategy.h"
#include "core/random_opt_strategy.h"
#include "core/random_strategy.h"

namespace pqs::core {

LoadSummary summarize_load(const ServiceContext& ctx) {
    LoadSummary summary;
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t count = 0;
    ctx.world.alive_set().for_each([&](util::NodeId id) {
        const double x = static_cast<double>(ctx.load.touches(id));
        sum += x;
        sum_sq += x * x;
        summary.max = std::max(summary.max, x);
        ++count;
    });
    if (count == 0) {
        return summary;
    }
    summary.mean = sum / static_cast<double>(count);
    const double var =
        sum_sq / static_cast<double>(count) - summary.mean * summary.mean;
    summary.cv = summary.mean > 0.0
                     ? std::sqrt(std::max(0.0, var)) / summary.mean
                     : 0.0;
    // Denominator: resolved accesses (see LoadAccountant) — ops still in
    // flight at summary time already touched nodes and must not dilute
    // L(S). Identical to the historical accesses() count whenever every
    // access resolved before the summary was taken.
    if (ctx.load.access_denominator() > 0) {
        summary.mrw_load =
            summary.max / static_cast<double>(ctx.load.access_denominator());
    }
    return summary;
}

std::unique_ptr<AccessStrategy> make_strategy(ServiceContext& ctx,
                                              StrategyConfig config,
                                              std::uint32_t tag) {
    switch (config.kind) {
        case StrategyKind::kRandom:
            return std::make_unique<RandomStrategy>(
                ctx, config, tag, RandomStrategy::Mode::kMembership);
        case StrategyKind::kRandomSampling:
            return std::make_unique<RandomStrategy>(
                ctx, config, tag, RandomStrategy::Mode::kSampling);
        case StrategyKind::kRandomOpt:
            return std::make_unique<RandomOptStrategy>(ctx, config, tag);
        case StrategyKind::kPath:
            return std::make_unique<PathStrategy>(ctx, config, tag,
                                                  /*unique=*/false);
        case StrategyKind::kUniquePath:
            return std::make_unique<PathStrategy>(ctx, config, tag,
                                                  /*unique=*/true);
        case StrategyKind::kFlooding:
            return std::make_unique<FloodingStrategy>(ctx, config, tag);
    }
    throw std::invalid_argument("make_strategy: unknown strategy kind");
}

}  // namespace pqs::core
