// Probabilistic ε-intersecting biquorum system (§2.2, §5): binds an
// advertise-side and a lookup-side access strategy — possibly different
// ones, with different quorum sizes (the asymmetric construction enabled
// by the Mix-and-Match Lemma 5.2) — and exposes generic quorum accesses.
// The LocationService in location_service.h is the paper's main client.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/access_strategy.h"
#include "core/quorum_spec.h"

namespace pqs::core {

// Outcome of b-masking value voting over a lookup's collected replies.
struct VoteOutcome {
    bool conclusive = false;  // some value got > b concurring replies
    Value winner = 0;
    std::size_t winner_votes = 0;
    std::size_t outvoted = 0;  // replies not concurring with the winner
    std::size_t distinct = 0;  // distinct values seen
};

// Tallies reply values; the winner needs strictly more than b votes to
// mask up to b forged replies (ties broken toward the smaller value so
// the outcome is deterministic regardless of reply order).
VoteOutcome vote_values(const std::vector<Value>& values, std::size_t b);

class BiquorumSystem {
public:
    // `membership` may be null when neither strategy is RANDOM-based.
    // Quorum sizes left at 0 in `spec` are derived from spec.eps via
    // Corollary 5.3 for the world's node count.
    BiquorumSystem(net::World& world, BiquorumSpec spec,
                   membership::MembershipService* membership = nullptr);
    ~BiquorumSystem();
    BiquorumSystem(const BiquorumSystem&) = delete;
    BiquorumSystem& operator=(const BiquorumSystem&) = delete;

    const BiquorumSpec& spec() const { return spec_; }
    ServiceContext& context() { return ctx_; }
    AccessStrategy& advertise_strategy() { return *advertise_; }
    AccessStrategy& lookup_strategy() { return *lookup_; }

    // Analytic intersection guarantee of the configured sizes (Lemma 5.2)
    // — meaningful when at least one side is RANDOM.
    double intersection_guarantee() const;

    // One advertise-quorum access (store key -> value at the quorum).
    // Honors context().retry: a failed access is re-issued after backoff,
    // and the final AccessResult reports the attempt count.
    void advertise(util::NodeId origin, util::Key key, Value value,
                   AccessCallback done);
    // One lookup-quorum access (same retry behavior).
    void lookup(util::NodeId origin, util::Key key, AccessCallback done);

    // Lookup aimed at a cached target set (svc/ per-key quorum cache):
    // the first attempt contacts `targets` directly (no §6.2 replacement
    // healing, so stale members genuinely miss); any retries fall back to
    // fresh random quorums.
    void lookup_directed(util::NodeId origin, util::Key key,
                         const std::vector<util::NodeId>& targets,
                         AccessCallback done);

    LocalStore& store(util::NodeId id) { return ctx_.store(id); }

    // Installs handlers on a late-joining node (wired automatically via the
    // world's spawn listener).
    void attach_node(util::NodeId id);

private:
    // One access plus its (possible) retries. `attempt` is 1-based.
    // `first_issue` is when attempt 1 was issued: the final result's
    // latency spans from there, so retries and backoff delays count.
    // `directed` (may be null) aims the first attempt at a caller-given
    // target set; retries always revert to fresh random quorums.
    void access_with_retry(AccessKind kind, util::NodeId origin,
                           util::Key key, Value value, obs::TraceId trace,
                           sim::Time first_issue, AccessCallback done,
                           int attempt,
                           const std::vector<util::NodeId>* directed =
                               nullptr);

    // b-masking post-processing of one lookup attempt (byzantine_b > 0):
    // keeps the result only if some value got > b concurring replies,
    // else marks it inconclusive (which the retry policy treats like any
    // other failed attempt).
    void apply_vote(AccessResult& r, util::NodeId origin,
                    obs::TraceId trace) const;

    BiquorumSpec spec_;
    ServiceContext ctx_;
    ReplyPathRouter router_;
    std::unique_ptr<AccessStrategy> advertise_;
    std::unique_ptr<AccessStrategy> lookup_;
    // Pending backoff timers, keyed by token so each callback retires its
    // own entry; cancelled in the destructor (no dangling [this] events).
    std::unordered_map<std::uint64_t, sim::EventId> retry_timers_;
    std::uint64_t next_retry_token_ = 0;
};

}  // namespace pqs::core
