#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/byzantine_adversary.h"
#include "core/maintenance.h"
#include "obs/trace.h"
#include "sim/fault_plan.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace pqs::core {

namespace {

struct PhaseCounters {
    double data = 0.0;
    double routing = 0.0;
};

PhaseCounters snapshot(net::World& world) {
    return PhaseCounters{world.metrics().counter("net.data.tx"),
                         world.metrics().counter("net.routing.tx")};
}

// Continuation state for run_sequential. Shared-owned by the driver and by
// every event the driver schedules: a straggler continuation firing after
// run_sequential returned (deadline, abort) finds the state — including
// the op closure itself — still alive. The previous version captured a
// stack-local std::function by reference in those events, which is
// exactly the use-after-scope this type exists to prevent.
struct SeqState {
    net::World& world;
    std::function<void(std::size_t, std::function<void()>)> op;
    const sim::Time spacing;
    const std::size_t count;
    const bool* abort;
    std::size_t next = 0;
    bool finished = false;
};

void seq_launch(const std::shared_ptr<SeqState>& state) {
    if ((state->abort != nullptr && *state->abort) ||
        state->next >= state->count) {
        state->finished = true;
        return;
    }
    const std::size_t index = state->next++;
    state->op(index, [state] {
        // pqs-lint: fire-and-forget(chain owns SeqState by shared_ptr; it
        // ends itself via state->finished when the op budget is spent)
        state->world.simulator().schedule_in(state->spacing,
                                             [state] { seq_launch(state); });
    });
}

// pqs-hot: called once per launched op. select(r) over the liveness
// bitset consumes the same RNG draw as indexing the old alive_nodes()
// snapshot and returns the same node — no O(n) copy per op.
std::optional<util::NodeId> random_alive(net::World& world, util::Rng& rng) {
    const util::AliveSet& alive = world.alive_set();
    if (alive.count() == 0) {
        return std::nullopt;
    }
    return alive.select(rng.index(alive.count()));
}

// Self-rescheduling helper for the live phase's periodic jobs. The chain
// owns its state (same shared-ownership discipline as SeqState); the body
// returns false to stop the chain.
struct Periodic {
    net::World& world;
    const sim::Time period;
    std::function<bool()> body;
};

void periodic_fire(const std::shared_ptr<Periodic>& task) {
    if (!task->body()) {
        return;
    }
    // pqs-lint: fire-and-forget(chain owns Periodic by shared_ptr and stops
    // itself when body() returns false; no external owner to cancel from)
    task->world.simulator().schedule_in(task->period,
                                        [task] { periodic_fire(task); });
}

}  // namespace

void run_sequential(net::World& world, std::size_t count, sim::Time spacing,
                    sim::Time per_op_budget,
                    std::function<void(std::size_t, std::function<void()>)> op,
                    const bool* abort) {
    if (count == 0) {
        return;
    }
    sim::Simulator& simulator = world.simulator();
    const sim::Time deadline =
        simulator.now() +
        static_cast<sim::Time>(count) * (per_op_budget + spacing) +
        60 * sim::kSecond;

    auto state = std::make_shared<SeqState>(
        SeqState{world, std::move(op), spacing, count, abort});
    seq_launch(state);
    while (!state->finished && !(abort != nullptr && *abort) &&
           simulator.now() < deadline && simulator.step()) {
    }
    if (!state->finished && !(abort != nullptr && *abort)) {
        PQS_WARN("scenario: sequential op driver hit its deadline with "
                 << state->next << "/" << count << " ops launched");
    }
}

ScenarioResult run_scenario(const ScenarioParams& params) {
    net::World world(params.world);
    const util::ScopedLogClock log_clock(
        [&world] { return sim::to_seconds(world.simulator().now()); });
    // Per-trial trace sink (thread-local, so parallel trials are
    // independent). Nothing below is constructed when tracing is off, and
    // obs::record() is a no-op — the run stays bit-identical.
    const obs::TraceOptions& trace_opts = obs::trace_options();
    std::unique_ptr<obs::TraceSink> trace_sink;
    if (trace_opts.enabled) {
        trace_sink = std::make_unique<obs::TraceSink>(world.simulator(),
                                                      trace_opts.capacity);
    }
    const obs::ScopedTraceSink scoped_sink(trace_sink.get());
    std::unique_ptr<membership::OracleMembership> membership;
    if (params.use_membership) {
        membership::OracleMembershipParams mp;
        mp.view_size = params.membership_view;
        membership =
            std::make_unique<membership::OracleMembership>(world, mp);
    }
    LocationService service(world, params.spec, membership.get());
    service.biquorum().context().op_timeout = params.op_timeout;
    service.biquorum().context().retry = RetryPolicy{
        params.op_max_attempts, params.op_retry_backoff, 2.0};
    service.biquorum().context().value_lease = params.value_lease;

    // Byzantine adversary: nothing below exists at b == 0 (no allocations,
    // no RNG, no spawn listener), so the classic run is bit-identical to a
    // build without the tamper hook.
    std::unique_ptr<sim::ByzantinePlan> byz_plan;
    std::unique_ptr<ByzantineAdversary> byz_adversary;
    if (params.byzantine.b > 0) {
        byz_plan = std::make_unique<sim::ByzantinePlan>(
            params.byzantine,
            util::Rng(params.world.seed ^ 0xbad0c0de5eed));
        byz_plan->recruit_static(params.world.n);
        world.add_spawn_listener(
            [plan = byz_plan.get()](util::NodeId id) { plan->on_join(id); });
        byz_adversary =
            std::make_unique<ByzantineAdversary>(world, *byz_plan);
    }

    ScenarioResult result;
    result.n = params.world.n;
    result.advertise_quorum =
        service.biquorum().spec().advertise.quorum_size;
    result.lookup_quorum = service.biquorum().spec().lookup.quorum_size;

    world.start();
    world.simulator().run_until(world.simulator().now() + params.warmup);

    util::Rng rng(params.world.seed ^ 0x5ca1ab1e5eed);
    bool aborted = false;

    // ---- advertise phase ----
    const PhaseCounters before_adv = snapshot(world);
    std::vector<util::Key> keys;
    keys.reserve(params.advertise_count);
    std::vector<util::NodeId> advertisers;
    util::Accumulator adv_nodes;
    std::size_t adv_ok = 0;
    run_sequential(
        world, params.advertise_count, params.op_spacing, params.op_timeout,
        [&](std::size_t i, std::function<void()> next) {
            const auto origin = random_alive(world, rng);
            if (!origin) {
                PQS_WARN("scenario: no node left alive to advertise from; "
                         "aborting");
                aborted = true;
                return;
            }
            const util::Key key = 1000 + i;
            keys.push_back(key);
            advertisers.push_back(*origin);
            service.advertise(*origin, key, /*value=*/key * 7 + 1,
                              [&, next = std::move(next)](
                                  const AccessResult& r) {
                                  if (r.ok) {
                                      ++adv_ok;
                                  }
                                  adv_nodes.add(static_cast<double>(
                                      r.nodes_contacted));
                                  next();
                              });
        },
        &aborted);
    // Drain stragglers so their messages stay in the advertise phase.
    world.simulator().run_until(world.simulator().now() + 2 * sim::kSecond);
    const PhaseCounters after_adv = snapshot(world);

    // ---- churn between phases (Fig. 14(f); superseded by live mode) ----
    const LiveChurnParams& live = params.live;
    if (!aborted && !live.enabled && params.fail_fraction > 0.0) {
        auto alive = world.alive_nodes();
        rng.shuffle(alive);
        const auto kill = static_cast<std::size_t>(
            params.fail_fraction * static_cast<double>(alive.size()));
        for (std::size_t i = 0; i < kill; ++i) {
            world.fail_node(alive[i]);
        }
    }
    if (!aborted && !live.enabled && params.join_fraction > 0.0) {
        const auto join = static_cast<std::size_t>(
            params.join_fraction * static_cast<double>(params.world.n));
        for (std::size_t i = 0; i < join; ++i) {
            world.spawn_node();
        }
    }
    if (!aborted && !live.enabled && params.adjust_lookup_to_network &&
        (params.fail_fraction > 0.0 || params.join_fraction > 0.0)) {
        const double scale =
            std::sqrt(static_cast<double>(world.alive_count()) /
                      static_cast<double>(params.world.n));
        const auto adjusted = static_cast<std::size_t>(std::lround(
            scale * static_cast<double>(result.lookup_quorum)));
        service.biquorum().lookup_strategy().set_quorum_size(
            std::max<std::size_t>(1, adjusted));
    }

    // ---- lookup phase ----
    std::vector<util::NodeId> lookers;
    {
        const std::size_t alive_count = world.alive_count();
        const std::size_t k =
            std::min<std::size_t>(params.lookup_nodes, alive_count);
        for (const std::size_t idx :
             rng.sample_without_replacement(alive_count, k)) {
            lookers.push_back(world.alive_set().select(idx));
        }
    }
    if (!aborted && lookers.empty()) {
        PQS_WARN("scenario: no node left alive to look up from; aborting");
        aborted = true;
    }

    // Live-churn machinery; constructed only when enabled so the classic
    // two-phase scenario stays bit-identical (no extra RNG draws, events
    // or allocations).
    std::unique_ptr<sim::FaultPlan> plan;
    std::unique_ptr<QuorumRefresher> refresher;
    std::shared_ptr<NetworkSizeEstimator> estimator;
    std::vector<LiveSample> samples;
    std::vector<double> sample_alive_sum;
    std::vector<double> sample_quorum_sum;
    bool live_active = false;
    sim::Time live_start = 0;
    if (!aborted && live.enabled) {
        live_active = true;
        live_start = world.simulator().now();
        service.biquorum().context().retry =
            RetryPolicy{live.op_max_attempts, live.op_retry_backoff, 2.0};
        world.link().set_fault_injection(
            net::LinkFaults{live.link_drop, live.link_duplicate});

        sim::FaultPlanParams fp;
        fp.crash_fraction_per_sec = live.crash_fraction_per_sec;
        fp.join_fraction_per_sec = live.join_fraction_per_sec;
        fp.recover_probability = live.recover_probability;
        fp.recover_delay_mean = live.recover_delay_mean;
        sim::FaultPlanHooks hooks;
        hooks.population = [&world] { return world.alive_count(); };
        hooks.crash_one =
            [&world](util::Rng& r) -> std::optional<util::NodeId> {
            const util::AliveSet& alive = world.alive_set();
            if (alive.count() == 0) {
                return std::nullopt;
            }
            const util::NodeId victim =
                alive.select(r.index(alive.count()));
            world.fail_node(victim);
            return victim;
        };
        hooks.join_one = [&world](util::Rng&) { world.spawn_node(); };
        hooks.recover = [&world](util::NodeId id) { world.revive_node(id); };
        plan = std::make_unique<sim::FaultPlan>(world.simulator(), fp,
                                                std::move(hooks), rng.fork());
        plan->start();

        if (live.refresh) {
            QuorumRefresher::Params rp;
            rp.eps_max = live.refresh_eps_max;
            rp.churn_kind = ChurnKind::kFailuresAndJoins;
            rp.sizing = live.resize_lookup_from_estimate
                            ? LookupSizing::kAdjustedToNetworkSize
                            : LookupSizing::kFixed;
            rp.churn_fraction_per_sec =
                live.crash_fraction_per_sec + live.join_fraction_per_sec;
            rp.explicit_interval = live.refresh_interval;
            refresher = std::make_unique<QuorumRefresher>(service, rp);
            for (const util::NodeId node : advertisers) {
                refresher->start_node(node);
            }
        }

        if (live.resize_lookup_from_estimate && membership != nullptr) {
            estimator = std::make_shared<NetworkSizeEstimator>(*membership,
                                                               rng.fork());
            const std::size_t qa = result.advertise_quorum;
            const double eps = params.spec.eps;
            auto task = std::make_shared<Periodic>(Periodic{
                world, live.estimate_period,
                [&world, &service, &live_active, &rng, estimator, qa, eps,
                 probes_wanted = live.estimate_probes] {
                    if (!live_active) {
                        return false;
                    }
                    const util::AliveSet& alive = world.alive_set();
                    if (alive.count() == 0) {
                        return true;
                    }
                    std::vector<util::NodeId> probes;
                    const std::size_t k =
                        std::min(probes_wanted, alive.count());
                    for (const std::size_t idx :
                         rng.sample_without_replacement(alive.count(), k)) {
                        probes.push_back(alive.select(idx));
                    }
                    if (const auto est =
                            estimator->estimate_across(probes, 2)) {
                        const auto n_est = static_cast<std::size_t>(
                            std::max<long>(1, std::lround(*est)));
                        service.biquorum().lookup_strategy().set_quorum_size(
                            lookup_size_for(qa, n_est, eps));
                    }
                    return true;
                }});
            // pqs-lint: fire-and-forget(kicks off a shared_ptr-owned
            // periodic_fire chain; see the chain's own annotation)
            world.simulator().schedule_in(live.estimate_period,
                                          [task] { periodic_fire(task); });
        }
    }

    const PhaseCounters before_lkp = snapshot(world);
    const double energy_before_lkp =
        world.energy() != nullptr ? world.energy()->consumed_j() : 0.0;
    std::size_t hits = 0;
    std::size_t intersections = 0;
    std::size_t reply_drops = 0;
    std::size_t lkp_timeouts = 0;
    std::size_t inconclusives = 0;
    util::Accumulator lkp_nodes;
    util::Accumulator lkp_latency;
    if (!aborted) {
        run_sequential(
            world, params.lookup_count, params.op_spacing, params.op_timeout,
            [&](std::size_t i, std::function<void()> next) {
                const util::Key key =
                    params.lookup_missing_keys
                        ? 900000 + i
                        : (keys.empty() ? 1 : keys[rng.index(keys.size())]);
                const util::NodeId origin =
                    lookers[rng.index(lookers.size())];
                // awake(): a duty-cycled client initiates work when its
                // radio is on — a sleeping origin is skipped like a dead
                // one, so availability measures the quorum system rather
                // than the client's own duty cycle.
                if (!world.awake(origin)) {
                    next();
                    return;
                }
                service.lookup(
                    origin, key,
                    [&, origin,
                     next = std::move(next)](const AccessResult& r) {
                        obs::record(r.trace, obs::EventKind::kOpResolved,
                                    origin,
                                    static_cast<std::uint64_t>(r.ok),
                                    static_cast<std::uint64_t>(r.attempts));
                        if (r.ok) {
                            ++hits;
                            // Success-only: a timed-out lookup's "latency"
                            // is just the timeout constant and used to drag
                            // the mean toward it.
                            lkp_latency.add(sim::to_seconds(r.latency));
                            result.latency_hist.record(r.latency);
                        }
                        if (r.timed_out) {
                            ++lkp_timeouts;
                        }
                        if (r.inconclusive) {
                            ++inconclusives;
                        }
                        if (r.intersected) {
                            ++intersections;
                        }
                        if (r.intersected && !r.ok) {
                            ++reply_drops;
                        }
                        lkp_nodes.add(
                            static_cast<double>(r.nodes_contacted));
                        if (live_active) {
                            const auto bucket = static_cast<std::size_t>(
                                (world.simulator().now() - live_start) /
                                live.sample_period);
                            if (bucket >= samples.size()) {
                                samples.resize(bucket + 1);
                                sample_alive_sum.resize(bucket + 1, 0.0);
                                sample_quorum_sum.resize(bucket + 1, 0.0);
                            }
                            LiveSample& s = samples[bucket];
                            s.lookups += 1.0;
                            s.hits += r.ok ? 1.0 : 0.0;
                            s.intersections += r.intersected ? 1.0 : 0.0;
                            sample_alive_sum[bucket] +=
                                static_cast<double>(world.alive_count());
                            sample_quorum_sum[bucket] += static_cast<double>(
                                service.biquorum()
                                    .lookup_strategy()
                                    .config()
                                    .quorum_size);
                        }
                        next();
                    });
            },
            &aborted);
    }
    if (plan != nullptr) {
        // Freeze the fault processes, then let in-flight ops drain.
        plan->stop();
    }
    world.simulator().run_until(world.simulator().now() + 2 * sim::kSecond);
    live_active = false;
    if (live.enabled) {
        world.link().set_fault_injection(net::LinkFaults{});
        if (refresher != nullptr) {
            result.live_refreshes =
                static_cast<double>(refresher->refreshes_performed());
            refresher->stop();
        }
        if (plan != nullptr) {
            result.live_crashes = static_cast<double>(plan->crashes());
            result.live_joins = static_cast<double>(plan->joins());
            result.live_recoveries = static_cast<double>(plan->recoveries());
        }
        for (std::size_t b = 0; b < samples.size(); ++b) {
            samples[b].t_s = sim::to_seconds(
                static_cast<sim::Time>(b + 1) * live.sample_period);
            if (samples[b].lookups > 0.0) {
                samples[b].alive_nodes =
                    sample_alive_sum[b] / samples[b].lookups;
                samples[b].lookup_quorum =
                    sample_quorum_sum[b] / samples[b].lookups;
            }
        }
        result.live_samples = std::move(samples);
    }
    const PhaseCounters after_lkp = snapshot(world);

    // ---- aggregate ----
    const double n_adv =
        std::max(1.0, static_cast<double>(params.advertise_count));
    const double n_lkp =
        std::max(1.0, static_cast<double>(params.lookup_count));
    result.hit_ratio = static_cast<double>(hits) / n_lkp;
    result.intersect_ratio = static_cast<double>(intersections) / n_lkp;
    result.reply_drop_ratio = static_cast<double>(reply_drops) / n_lkp;
    result.avg_lookup_nodes = lkp_nodes.empty() ? 0.0 : lkp_nodes.mean();
    result.avg_lookup_latency_s =
        lkp_latency.empty() ? 0.0 : lkp_latency.mean();
    result.timeout_rate = static_cast<double>(lkp_timeouts) / n_lkp;
    result.advertise_ok_ratio = static_cast<double>(adv_ok) / n_adv;
    result.avg_advertise_nodes = adv_nodes.empty() ? 0.0 : adv_nodes.mean();
    result.msgs_per_advertise = (after_adv.data - before_adv.data) / n_adv;
    result.routing_per_advertise =
        (after_adv.routing - before_adv.routing) / n_adv;
    result.msgs_per_lookup = (after_lkp.data - before_lkp.data) / n_lkp;
    result.routing_per_lookup =
        (after_lkp.routing - before_lkp.routing) / n_lkp;
    result.aborted = aborted ? 1.0 : 0.0;
    result.load = summarize_load(service.biquorum().context());
    result.inconclusive_rate = static_cast<double>(inconclusives) / n_lkp;
    if (byz_plan != nullptr) {
        result.byzantine_marked = static_cast<double>(byz_plan->marked());
        result.byzantine_tampered =
            static_cast<double>(byz_plan->counters().tampered());
    }
    result.sim_events =
        static_cast<double>(world.simulator().events_processed());
    result.kernel = world.kernel_stats();
    result.energy_sleep_transitions =
        static_cast<double>(result.kernel.energy_sleep_transitions);
    result.energy_depletions =
        static_cast<double>(result.kernel.energy_depletions);
    result.lease_expirations =
        static_cast<double>(result.kernel.lease_expirations);
    result.refreshes_deferred =
        static_cast<double>(result.kernel.refreshes_deferred);
    if (world.energy() != nullptr) {
        result.energy_consumed_j = world.energy()->consumed_j();
        result.joules_per_lookup =
            (result.energy_consumed_j - energy_before_lkp) / n_lkp;
        result.time_to_first_partition_s =
            world.time_to_first_partition_s();
        result.time_to_half_depletion_s =
            world.time_to_half_depletion_s();
    }
    result.arena_high_water =
        static_cast<double>(world.arena_high_water());
    result.totals = world.metrics();
    if (trace_sink != nullptr && !trace_opts.out_base.empty()) {
        const std::string path =
            obs::trace_output_path(trace_opts.out_base, params.world.seed);
        if (!trace_sink->dump_chrome_json(path)) {
            PQS_WARN("scenario: failed to write trace to " << path);
        }
    }
    return result;
}

namespace {

// X-macro over every scalar metric of ScenarioResult; the single source of
// truth for aggregation, so adding a field here is all it takes.
#define PQS_SCENARIO_METRICS(X)   \
    X(hit_ratio)                  \
    X(intersect_ratio)            \
    X(reply_drop_ratio)           \
    X(avg_lookup_nodes)           \
    X(avg_lookup_latency_s)       \
    X(timeout_rate)               \
    X(advertise_ok_ratio)         \
    X(avg_advertise_nodes)        \
    X(msgs_per_advertise)         \
    X(routing_per_advertise)      \
    X(msgs_per_lookup)            \
    X(routing_per_lookup)         \
    X(load.mean)                  \
    X(load.max)                   \
    X(load.cv)                    \
    X(load.mrw_load)              \
    X(inconclusive_rate)          \
    X(byzantine_marked)           \
    X(byzantine_tampered)         \
    X(aborted)                    \
    X(live_crashes)               \
    X(live_joins)                 \
    X(live_recoveries)            \
    X(live_refreshes)             \
    X(energy_consumed_j)          \
    X(joules_per_lookup)          \
    X(energy_depletions)          \
    X(energy_sleep_transitions)   \
    X(time_to_first_partition_s)  \
    X(time_to_half_depletion_s)   \
    X(lease_expirations)          \
    X(refreshes_deferred)         \
    X(sim_events)                 \
    X(arena_high_water)

// Same pattern for the per-bucket fields of LiveSample.
#define PQS_LIVE_SAMPLE_METRICS(X) \
    X(t_s)                         \
    X(lookups)                     \
    X(hits)                        \
    X(intersections)               \
    X(alive_nodes)                 \
    X(lookup_quorum)

}  // namespace

const std::vector<ScenarioMetric>& scenario_metrics() {
    static const std::vector<ScenarioMetric> metrics = {
#define PQS_METRIC_ENTRY(field)                                     \
    ScenarioMetric{#field,                                          \
                   [](const ScenarioResult& r) { return r.field; }, \
                   [](ScenarioResult& r, double v) { r.field = v; }},
        PQS_SCENARIO_METRICS(PQS_METRIC_ENTRY)
#undef PQS_METRIC_ENTRY
    };
    return metrics;
}

ScenarioAggregate aggregate_scenarios(
    const std::vector<ScenarioResult>& results) {
    ScenarioAggregate agg;
    agg.runs = static_cast<int>(results.size());
    if (results.empty()) {
        return agg;
    }
    // Copy non-metric context (n, quorum sizes) from the first run, then
    // merge raw counters across runs in index order.
    agg.mean = results.front();
    agg.mean.totals.clear();
    agg.mean.kernel = util::KernelStats{};
    agg.mean.latency_hist = obs::LatencyHistogram{};
    agg.stddev.n = agg.mean.n;
    agg.stddev.advertise_quorum = agg.mean.advertise_quorum;
    agg.stddev.lookup_quorum = agg.mean.lookup_quorum;
    for (const ScenarioResult& one : results) {
        agg.mean.totals.merge(one.totals);
        agg.mean.kernel += one.kernel;
        agg.mean.latency_hist.merge(one.latency_hist);
    }
    for (const ScenarioMetric& metric : scenario_metrics()) {
        util::Accumulator acc;
        for (const ScenarioResult& one : results) {
            acc.add(metric.get(one));
        }
        metric.set(agg.mean, acc.mean());
        metric.set(agg.stddev, acc.count() > 1 ? acc.stddev() : 0.0);
    }

    // Element-wise aggregation of the live-phase buckets. Runs may differ
    // in bucket count (churn shifts op pacing); each bucket aggregates
    // over the runs that reached it.
    std::size_t buckets = 0;
    for (const ScenarioResult& one : results) {
        buckets = std::max(buckets, one.live_samples.size());
    }
    agg.mean.live_samples.assign(buckets, LiveSample{});
    agg.stddev.live_samples.assign(buckets, LiveSample{});
    for (std::size_t b = 0; b < buckets; ++b) {
#define PQS_LIVE_FIELD_AGG(field)                                     \
    {                                                                 \
        util::Accumulator acc;                                        \
        for (const ScenarioResult& one : results) {                   \
            if (b < one.live_samples.size()) {                        \
                acc.add(one.live_samples[b].field);                   \
            }                                                         \
        }                                                             \
        agg.mean.live_samples[b].field = acc.mean();                  \
        agg.stddev.live_samples[b].field =                            \
            acc.count() > 1 ? acc.stddev() : 0.0;                     \
    }
        PQS_LIVE_SAMPLE_METRICS(PQS_LIVE_FIELD_AGG)
#undef PQS_LIVE_FIELD_AGG
    }
    return agg;
}

ScenarioAggregate run_scenario_averaged(ScenarioParams params, int runs,
                                        std::uint64_t seed_base) {
    const std::size_t count = runs > 0 ? static_cast<std::size_t>(runs) : 0;
    std::vector<ScenarioResult> results(count);
    util::parallel_for(count, /*threads=*/0, [&](std::size_t r) {
        ScenarioParams p = params;
        p.world.seed = seed_base + static_cast<std::uint64_t>(r);
        results[r] = run_scenario(p);
    });
    return aggregate_scenarios(results);
}

}  // namespace pqs::core
