#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"
#include "util/parallel.h"

namespace pqs::core {

namespace {

struct PhaseCounters {
    double data = 0.0;
    double routing = 0.0;
};

PhaseCounters snapshot(net::World& world) {
    return PhaseCounters{world.metrics().counter("net.data.tx"),
                         world.metrics().counter("net.routing.tx")};
}

// Runs `count` operations back to back: each op's completion schedules the
// next after `spacing`. Drives the simulator until all ops completed or
// the deadline passes.
void run_sequential(net::World& world, std::size_t count, sim::Time spacing,
                    sim::Time per_op_budget,
                    const std::function<void(std::size_t,
                                             std::function<void()>)>& op) {
    if (count == 0) {
        return;
    }
    sim::Simulator& simulator = world.simulator();
    const sim::Time deadline =
        simulator.now() +
        static_cast<sim::Time>(count) * (per_op_budget + spacing) +
        60 * sim::kSecond;

    struct State {
        std::size_t next = 0;
        bool finished = false;
    };
    auto state = std::make_shared<State>();

    std::function<void()> launch;
    launch = [&world, &op, state, count, spacing, &launch] {
        if (state->next >= count) {
            state->finished = true;
            return;
        }
        const std::size_t index = state->next++;
        op(index, [&world, spacing, &launch] {
            world.simulator().schedule_in(spacing, [&launch] { launch(); });
        });
    };
    launch();
    while (!state->finished && simulator.now() < deadline &&
           simulator.step()) {
    }
    if (!state->finished) {
        PQS_WARN("scenario: sequential op driver hit its deadline with "
                 << state->next << "/" << count << " ops launched");
    }
}

util::NodeId random_alive(net::World& world, util::Rng& rng) {
    const auto alive = world.alive_nodes();
    return alive[rng.index(alive.size())];
}

}  // namespace

ScenarioResult run_scenario(const ScenarioParams& params) {
    net::World world(params.world);
    const util::ScopedLogClock log_clock(
        [&world] { return sim::to_seconds(world.simulator().now()); });
    std::unique_ptr<membership::OracleMembership> membership;
    if (params.use_membership) {
        membership::OracleMembershipParams mp;
        mp.view_size = params.membership_view;
        membership =
            std::make_unique<membership::OracleMembership>(world, mp);
    }
    LocationService service(world, params.spec, membership.get());
    service.biquorum().context().op_timeout = params.op_timeout;

    ScenarioResult result;
    result.n = params.world.n;
    result.advertise_quorum =
        service.biquorum().spec().advertise.quorum_size;
    result.lookup_quorum = service.biquorum().spec().lookup.quorum_size;

    world.start();
    world.simulator().run_until(world.simulator().now() + params.warmup);

    util::Rng rng(params.world.seed ^ 0x5ca1ab1e5eed);

    // ---- advertise phase ----
    const PhaseCounters before_adv = snapshot(world);
    std::vector<util::Key> keys;
    keys.reserve(params.advertise_count);
    util::Accumulator adv_nodes;
    std::size_t adv_ok = 0;
    run_sequential(
        world, params.advertise_count, params.op_spacing, params.op_timeout,
        [&](std::size_t i, std::function<void()> next) {
            const util::Key key = 1000 + i;
            const util::NodeId origin = random_alive(world, rng);
            keys.push_back(key);
            service.advertise(origin, key, /*value=*/key * 7 + 1,
                              [&, next = std::move(next)](
                                  const AccessResult& r) {
                                  if (r.ok) {
                                      ++adv_ok;
                                  }
                                  adv_nodes.add(static_cast<double>(
                                      r.nodes_contacted));
                                  next();
                              });
        });
    // Drain stragglers so their messages stay in the advertise phase.
    world.simulator().run_until(world.simulator().now() + 2 * sim::kSecond);
    const PhaseCounters after_adv = snapshot(world);

    // ---- churn between phases (Fig. 14(f)) ----
    if (params.fail_fraction > 0.0) {
        auto alive = world.alive_nodes();
        rng.shuffle(alive);
        const auto kill = static_cast<std::size_t>(
            params.fail_fraction * static_cast<double>(alive.size()));
        for (std::size_t i = 0; i < kill; ++i) {
            world.fail_node(alive[i]);
        }
    }
    if (params.join_fraction > 0.0) {
        const auto join = static_cast<std::size_t>(
            params.join_fraction * static_cast<double>(params.world.n));
        for (std::size_t i = 0; i < join; ++i) {
            world.spawn_node();
        }
    }
    if (params.adjust_lookup_to_network &&
        (params.fail_fraction > 0.0 || params.join_fraction > 0.0)) {
        const double scale =
            std::sqrt(static_cast<double>(world.alive_count()) /
                      static_cast<double>(params.world.n));
        const auto adjusted = static_cast<std::size_t>(std::lround(
            scale * static_cast<double>(result.lookup_quorum)));
        service.biquorum().lookup_strategy().set_quorum_size(
            std::max<std::size_t>(1, adjusted));
    }

    // ---- lookup phase ----
    std::vector<util::NodeId> lookers;
    {
        const auto alive = world.alive_nodes();
        const std::size_t k =
            std::min<std::size_t>(params.lookup_nodes, alive.size());
        for (const std::size_t idx :
             rng.sample_without_replacement(alive.size(), k)) {
            lookers.push_back(alive[idx]);
        }
    }
    const PhaseCounters before_lkp = snapshot(world);
    std::size_t hits = 0;
    std::size_t intersections = 0;
    std::size_t reply_drops = 0;
    util::Accumulator lkp_nodes;
    util::Accumulator lkp_latency;
    run_sequential(
        world, params.lookup_count, params.op_spacing, params.op_timeout,
        [&](std::size_t i, std::function<void()> next) {
            const util::Key key =
                params.lookup_missing_keys
                    ? 900000 + i
                    : (keys.empty() ? 1 : keys[rng.index(keys.size())]);
            const util::NodeId origin = lookers[rng.index(lookers.size())];
            if (!world.alive(origin)) {
                next();
                return;
            }
            service.lookup(origin, key,
                           [&, next = std::move(next)](const AccessResult& r) {
                               if (r.ok) {
                                   ++hits;
                               }
                               if (r.intersected) {
                                   ++intersections;
                               }
                               if (r.intersected && !r.ok) {
                                   ++reply_drops;
                               }
                               lkp_nodes.add(static_cast<double>(
                                   r.nodes_contacted));
                               lkp_latency.add(sim::to_seconds(r.latency));
                               next();
                           });
        });
    world.simulator().run_until(world.simulator().now() + 2 * sim::kSecond);
    const PhaseCounters after_lkp = snapshot(world);

    // ---- aggregate ----
    const double n_adv =
        std::max(1.0, static_cast<double>(params.advertise_count));
    const double n_lkp =
        std::max(1.0, static_cast<double>(params.lookup_count));
    result.hit_ratio = static_cast<double>(hits) / n_lkp;
    result.intersect_ratio = static_cast<double>(intersections) / n_lkp;
    result.reply_drop_ratio = static_cast<double>(reply_drops) / n_lkp;
    result.avg_lookup_nodes = lkp_nodes.empty() ? 0.0 : lkp_nodes.mean();
    result.avg_lookup_latency_s =
        lkp_latency.empty() ? 0.0 : lkp_latency.mean();
    result.advertise_ok_ratio = static_cast<double>(adv_ok) / n_adv;
    result.avg_advertise_nodes = adv_nodes.empty() ? 0.0 : adv_nodes.mean();
    result.msgs_per_advertise = (after_adv.data - before_adv.data) / n_adv;
    result.routing_per_advertise =
        (after_adv.routing - before_adv.routing) / n_adv;
    result.msgs_per_lookup = (after_lkp.data - before_lkp.data) / n_lkp;
    result.routing_per_lookup =
        (after_lkp.routing - before_lkp.routing) / n_lkp;
    result.load = summarize_load(service.biquorum().context());
    result.sim_events =
        static_cast<double>(world.simulator().events_processed());
    result.kernel = world.kernel_stats();
    result.totals = world.metrics();
    return result;
}

namespace {

// X-macro over every scalar metric of ScenarioResult; the single source of
// truth for aggregation, so adding a field here is all it takes.
#define PQS_SCENARIO_METRICS(X)   \
    X(hit_ratio)                  \
    X(intersect_ratio)            \
    X(reply_drop_ratio)           \
    X(avg_lookup_nodes)           \
    X(avg_lookup_latency_s)       \
    X(advertise_ok_ratio)         \
    X(avg_advertise_nodes)        \
    X(msgs_per_advertise)         \
    X(routing_per_advertise)      \
    X(msgs_per_lookup)            \
    X(routing_per_lookup)         \
    X(load.mean)                  \
    X(load.max)                   \
    X(load.cv)                    \
    X(sim_events)

}  // namespace

const std::vector<ScenarioMetric>& scenario_metrics() {
    static const std::vector<ScenarioMetric> metrics = {
#define PQS_METRIC_ENTRY(field)                                     \
    ScenarioMetric{#field,                                          \
                   [](const ScenarioResult& r) { return r.field; }, \
                   [](ScenarioResult& r, double v) { r.field = v; }},
        PQS_SCENARIO_METRICS(PQS_METRIC_ENTRY)
#undef PQS_METRIC_ENTRY
    };
    return metrics;
}

ScenarioAggregate aggregate_scenarios(
    const std::vector<ScenarioResult>& results) {
    ScenarioAggregate agg;
    agg.runs = static_cast<int>(results.size());
    if (results.empty()) {
        return agg;
    }
    // Copy non-metric context (n, quorum sizes) from the first run, then
    // merge raw counters across runs in index order.
    agg.mean = results.front();
    agg.mean.totals.clear();
    agg.mean.kernel = util::KernelStats{};
    agg.stddev.n = agg.mean.n;
    agg.stddev.advertise_quorum = agg.mean.advertise_quorum;
    agg.stddev.lookup_quorum = agg.mean.lookup_quorum;
    for (const ScenarioResult& one : results) {
        agg.mean.totals.merge(one.totals);
        agg.mean.kernel += one.kernel;
    }
    for (const ScenarioMetric& metric : scenario_metrics()) {
        util::Accumulator acc;
        for (const ScenarioResult& one : results) {
            acc.add(metric.get(one));
        }
        metric.set(agg.mean, acc.mean());
        metric.set(agg.stddev, acc.count() > 1 ? acc.stddev() : 0.0);
    }
    return agg;
}

ScenarioAggregate run_scenario_averaged(ScenarioParams params, int runs,
                                        std::uint64_t seed_base) {
    const std::size_t count = runs > 0 ? static_cast<std::size_t>(runs) : 0;
    std::vector<ScenarioResult> results(count);
    util::parallel_for(count, /*threads=*/0, [&](std::size_t r) {
        ScenarioParams p = params;
        p.world.seed = seed_base + static_cast<std::uint64_t>(r);
        results[r] = run_scenario(p);
    });
    return aggregate_scenarios(results);
}

}  // namespace pqs::core
