#include "core/quorum_optimizer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pqs::core {

double advertise_fraction(double tau) {
    if (tau <= 0.0) {
        throw std::invalid_argument("tau must be positive");
    }
    return 1.0 / (1.0 + tau);
}

CandidateConfig evaluate_candidate(StrategyKind kind, std::size_t qa,
                                   std::size_t ql,
                                   const OptimizerParams& params,
                                   const WorkloadProfile& workload) {
    const double f_a = advertise_fraction(workload.tau);
    const double f_l = 1.0 - f_a;
    CandidateConfig c;
    c.kind = kind;
    c.advertise = qa;
    c.lookup = ql;
    c.eps_bound =
        params.b == 0
            ? nonintersection_upper_bound(qa, ql, params.n)
            : masking_failure_bound(qa, ql, params.n, params.b);
    c.msgs_per_op =
        f_a * workload.cost_advertise *
            access_cost_messages(kind, qa, params.n, workload.avg_degree) +
        f_l * workload.cost_lookup *
            access_cost_messages(kind, ql, params.n, workload.avg_degree);
    c.load_per_op = (f_a * static_cast<double>(qa) +
                     f_l * static_cast<double>(ql)) /
                    static_cast<double>(params.n);
    c.objective = c.msgs_per_op +
                  params.load_weight * static_cast<double>(params.n) *
                      c.load_per_op;
    return c;
}

namespace {

// Deterministic "strictly better" order for the argmin: objective, then
// the enum value, then the smaller advertise size — so ties never depend
// on container iteration order.
bool better(const CandidateConfig& a, const CandidateConfig& b) {
    if (a.objective != b.objective) {
        return a.objective < b.objective;
    }
    if (a.kind != b.kind) {
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    }
    return a.advertise < b.advertise;
}

}  // namespace

OptimizerResult optimize_quorums(const OptimizerParams& params,
                                 const WorkloadProfile& workload) {
    if (params.n == 0) {
        throw std::invalid_argument("optimize_quorums: n must be > 0");
    }
    if (!(params.eps > 0.0 && params.eps < 1.0)) {
        throw std::invalid_argument(
            "optimize_quorums: eps must be in (0, 1)");
    }
    if (params.kinds.empty()) {
        throw std::invalid_argument(
            "optimize_quorums: at least one strategy kind");
    }

    std::vector<CandidateConfig> candidates;
    for (const StrategyKind kind : params.kinds) {
        for (std::size_t qa = params.b + 1; qa <= params.n; ++qa) {
            const std::size_t ql =
                params.b == 0
                    ? lookup_size_for(qa, params.n, params.eps)
                    : masking_lookup_size_for(qa, params.n, params.eps,
                                              params.b);
            if (ql > params.n) {
                continue;  // this |Qa| cannot meet ε within the network
            }
            candidates.push_back(
                evaluate_candidate(kind, qa, ql, params, workload));
        }
    }
    if (candidates.empty()) {
        throw std::invalid_argument(
            "optimize_quorums: no feasible configuration meets eps");
    }

    OptimizerResult result;
    result.best = candidates.front();
    for (const CandidateConfig& c : candidates) {
        if (better(c, result.best)) {
            result.best = c;
        }
    }

    const std::size_t q_sym =
        params.b == 0
            ? symmetric_quorum_size(params.n, params.eps)
            : masking_symmetric_quorum_size(params.n, params.eps, params.b);
    result.symmetric = evaluate_candidate(
        params.baseline_kind, std::min(q_sym, params.n),
        std::min(q_sym, params.n), params, workload);
    result.improvement =
        result.symmetric.objective > 0.0
            ? 1.0 - result.best.objective / result.symmetric.objective
            : 0.0;

    // Pareto frontier over (msgs_per_op, load_per_op): sort by messages
    // ascending (ties: load ascending), then sweep keeping strictly
    // improving load. The result is ascending in msgs and strictly
    // decreasing in load — monotone by construction.
    std::sort(candidates.begin(), candidates.end(),
              [](const CandidateConfig& a, const CandidateConfig& b) {
                  if (a.msgs_per_op != b.msgs_per_op) {
                      return a.msgs_per_op < b.msgs_per_op;
                  }
                  if (a.load_per_op != b.load_per_op) {
                      return a.load_per_op < b.load_per_op;
                  }
                  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
    double best_load = std::numeric_limits<double>::infinity();
    for (const CandidateConfig& c : candidates) {
        if (c.load_per_op < best_load) {
            result.frontier.push_back(c);
            best_load = c.load_per_op;
        }
    }
    return result;
}

}  // namespace pqs::core
