// Workload-aware quorum sizing: search strategy × (|Qa|, |Qℓ|) along the
// Lemma 5.6 τ ratio for the latency/load/ε frontier.
//
// Lemma 5.6 minimizes total *message* cost for a measured lookup:advertise
// frequency ratio τ, giving |Qℓ|/|Qa| = cost_a/(τ·cost_l). The MRW load
// L(S) of the same system instead wants the *touch* rate balanced,
// |Qℓ|/|Qa| = 1/τ — two different optima whenever per-message costs and
// per-touch costs diverge, so the interesting object is the Pareto
// frontier over (messages/op, load/op) at equal ε, and the composite
// objective picks one point on it. Every candidate meets the Corollary
// 5.3 product bound (or its b-masking generalization) at the same ε, so
// the comparison against symmetric sizing is apples to apples.
#pragma once

#include <cstddef>
#include <vector>

#include "core/theory.h"

namespace pqs::core {

// Measured (or assumed) traffic the optimizer sizes against.
struct WorkloadProfile {
    // Lookup:advertise frequency ratio (Lemma 5.6's τ). A read-mostly
    // service has τ >> 1; write-heavy ingest has τ << 1.
    double tau = 1.0;
    // Relative per-message costs of the two access kinds (Lemma 5.6's
    // c_a, c_l; e.g. advertise payloads are larger than lookup queries).
    double cost_advertise = 1.0;
    double cost_lookup = 1.0;
    double avg_degree = 10.0;  // density of the deployment RGG (§2.4)
};

struct OptimizerParams {
    std::size_t n = 0;
    double eps = 0.1;
    std::size_t b = 0;  // b-masking budget; 0 = plain ε-intersection
    // Composite objective J = msgs_per_op + load_weight · n · load_per_op:
    // load_weight converts the busiest node's access probability into
    // message-equivalent units (n·load ≈ touches/op on the busiest node
    // were load perfectly balanced).
    double load_weight = 1.0;
    // Strategy kinds to search over.
    std::vector<StrategyKind> kinds = {StrategyKind::kRandom,
                                       StrategyKind::kUniquePath,
                                       StrategyKind::kPath};
    // Strategy of the symmetric Corollary 5.3 baseline being challenged.
    StrategyKind baseline_kind = StrategyKind::kRandom;
};

// One sized configuration with its analytic figures of merit.
struct CandidateConfig {
    StrategyKind kind = StrategyKind::kRandom;
    std::size_t advertise = 0;  // |Qa|
    std::size_t lookup = 0;     // |Qℓ|
    // Closed-form failure bound at these sizes (non-intersection at b = 0,
    // masking failure at b > 0); <= eps for every emitted candidate.
    double eps_bound = 1.0;
    // Expected network-layer messages per operation, frequency-weighted
    // over the τ mix (access_cost_messages; Fig. 3 leading constants).
    double msgs_per_op = 0.0;
    // Expected per-node access probability per operation (MRW load of the
    // mix): (f_a·|Qa| + f_l·|Qℓ|)/n.
    double load_per_op = 0.0;
    double objective = 0.0;  // composite J
};

struct OptimizerResult {
    CandidateConfig best;       // argmin J over the whole search space
    CandidateConfig symmetric;  // Corollary 5.3 symmetric baseline
    // Pareto frontier over (msgs_per_op, load_per_op), ascending in
    // msgs_per_op (hence non-increasing in load_per_op).
    std::vector<CandidateConfig> frontier;
    // 1 - best.objective / symmetric.objective (>= 0 by construction:
    // the baseline's own configuration is inside the search space).
    double improvement = 0.0;
};

// Fraction of operations that are advertises: 1/(1+τ).
double advertise_fraction(double tau);

// Analytic figures of one (kind, |Qa|, |Qℓ|) configuration. Does not
// check the ε bound — callers searching the space filter on eps_bound.
CandidateConfig evaluate_candidate(StrategyKind kind, std::size_t qa,
                                   std::size_t ql,
                                   const OptimizerParams& params,
                                   const WorkloadProfile& workload);

// Searches every kind × |Qa| (with |Qℓ| minimally sized to meet the ε
// product bound) and returns the composite optimum, the symmetric
// baseline, and the Pareto frontier. Throws std::invalid_argument on a
// degenerate setup (n == 0, eps outside (0,1), tau <= 0, empty kinds).
OptimizerResult optimize_quorums(const OptimizerParams& params,
                                 const WorkloadProfile& workload);

}  // namespace pqs::core
