// End-to-end experiment driver reproducing the paper's simulation scenario
// (§2.4, §8): build a network, run a warm-up, perform a batch of
// advertisements by random nodes, optionally apply churn, then perform a
// batch of lookups from a set of random nodes, and report the paper's
// metrics (hit ratio, network-layer messages per operation, additional
// routing overhead, reply drops, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/location_service.h"
#include "membership/oracle_membership.h"
#include "net/world.h"
#include "sim/byzantine_plan.h"
#include "obs/latency_histogram.h"
#include "util/kernel_stats.h"
#include "util/stats.h"

namespace pqs::core {

// Continuous-churn mode (§6.1 measured live, Fig. 7(b) companion): the
// lookup phase runs WHILE a sim::FaultPlan crashes/joins/recovers nodes,
// instead of applying churn as a single step between phases. Everything
// here defaults to off; with enabled=false the scenario is bit-identical
// to the classic two-phase run.
struct LiveChurnParams {
    bool enabled = false;

    // Poisson churn rates (fraction of the current population per second).
    double crash_fraction_per_sec = 0.0;
    double join_fraction_per_sec = 0.0;
    // Probability / mean delay of a crashed node's warm restart.
    double recover_probability = 0.0;
    sim::Time recover_delay_mean = 30 * sim::kSecond;

    // Link-level fault injection active during the live phase only.
    double link_drop = 0.0;
    double link_duplicate = 0.0;

    // Quorum refresh (§6.1 "with refresh" curve): every advertise origin
    // re-advertises at the interval derived from refresh_eps_max and the
    // churn rates, or at the explicit override.
    bool refresh = false;
    double refresh_eps_max = 0.2;
    std::optional<sim::Time> refresh_interval;

    // Periodically re-estimate n(t) via the birthday paradox (§6.3) and
    // resize the lookup quorum to match (§6.1 case (b)). Requires
    // use_membership.
    bool resize_lookup_from_estimate = false;
    sim::Time estimate_period = 10 * sim::kSecond;
    std::size_t estimate_probes = 16;

    // Operation-level retry for accesses issued during the live phase.
    int op_max_attempts = 1;
    sim::Time op_retry_backoff = 500 * sim::kMillisecond;

    // Width of the time buckets the measured intersection probability is
    // reported in (ScenarioResult::live_samples).
    sim::Time sample_period = 5 * sim::kSecond;
};

// One time bucket of the live phase. All fields are doubles so buckets
// aggregate across runs exactly like scalar metrics.
struct LiveSample {
    double t_s = 0.0;           // bucket end, seconds since live start
    double lookups = 0.0;       // lookups resolved in this bucket
    double hits = 0.0;
    double intersections = 0.0;
    double alive_nodes = 0.0;   // mean alive population at resolution
    double lookup_quorum = 0.0; // mean configured lookup size
};

struct ScenarioParams {
    net::WorldParams world;
    BiquorumSpec spec;
    bool use_membership = true;  // attach an oracle membership service
    // Membership view size; 0 keeps the paper's default of 2*sqrt(n).
    std::size_t membership_view = 0;

    std::size_t advertise_count = 100;  // paper: 100
    std::size_t lookup_count = 1000;    // paper: 1000
    std::size_t lookup_nodes = 25;      // paper: 25 random querying nodes
    sim::Time warmup = 15 * sim::kSecond;
    sim::Time op_spacing = 200 * sim::kMillisecond;
    sim::Time op_timeout = 20 * sim::kSecond;
    // Operation-level retry for the classic two-phase run (a vote-
    // inconclusive lookup attempt retries like any failed one). The live
    // phase keeps its own live.op_max_attempts. 1 = single attempt, the
    // historical behavior.
    int op_max_attempts = 1;
    sim::Time op_retry_backoff = 500 * sim::kMillisecond;

    // Look up keys that were never advertised (measures the cost of a
    // miss: the full quorum is paid, no early halting — Fig. 16).
    bool lookup_missing_keys = false;

    // Churn applied between the advertise and lookup phases (Fig. 14(f)):
    // fractions of the post-advertise network that fail / join.
    double fail_fraction = 0.0;
    double join_fraction = 0.0;
    // Re-derive the lookup quorum size from n(t) after churn (§6.1 case b).
    bool adjust_lookup_to_network = false;

    // Timed quorums: every value a holder stores carries this lease and
    // is evicted when it runs out unless re-advertised (refreshes extend
    // it). 0 disables expiry — the historical behavior, with no expiry
    // events scheduled at all. Pair with live.refresh to measure the
    // ε(Δ, refresh rate, duty cycle) trade of theory.h's
    // timed_quorum_miss_bound.
    sim::Time value_lease = 0;

    // Continuous churn during the lookup phase (replaces the step churn
    // above when enabled).
    LiveChurnParams live;

    // Byzantine reply-path adversary (off at byzantine.b == 0, where the
    // run is bit-identical to a build without the hook). byzantine.b is
    // how many nodes actually misbehave; spec.byzantine_b is the masking
    // budget the protocol defends against — keeping them independent lets
    // experiments measure what happens when the adversary exceeds (or
    // stays under) the provisioned budget.
    sim::ByzantinePlanParams byzantine;
};

struct ScenarioResult {
    std::size_t n = 0;
    std::size_t advertise_quorum = 0;
    std::size_t lookup_quorum = 0;

    // Lookup-phase outcomes.
    double hit_ratio = 0.0;        // replies received / lookups
    double intersect_ratio = 0.0;  // quorums intersected / lookups
    double reply_drop_ratio = 0.0; // intersected but reply lost
    double avg_lookup_nodes = 0.0; // quorum nodes contacted per lookup
    // Mean latency of *successful* lookups only. Timed-out and failed
    // lookups are excluded (they used to pollute the mean with the op
    // timeout constant); their frequency is timeout_rate below.
    double avg_lookup_latency_s = 0.0;
    double timeout_rate = 0.0;     // lookups that ended in a timeout

    // Advertise-phase outcomes.
    double advertise_ok_ratio = 0.0;
    double avg_advertise_nodes = 0.0;

    // Message accounting (network-layer transmissions per operation).
    double msgs_per_advertise = 0.0;
    double routing_per_advertise = 0.0;
    double msgs_per_lookup = 0.0;
    double routing_per_lookup = 0.0;

    // §3 load metric over the whole run (advertise + lookup phases).
    LoadSummary load;

    // b-masking / adversary accounting (all zero when byzantine.b == 0).
    double inconclusive_rate = 0.0;   // lookups ending vote-inconclusive
    double byzantine_marked = 0.0;    // nodes the plan actually marked
    double byzantine_tampered = 0.0;  // replies dropped or forged

    // 1.0 when the scenario aborted cleanly (e.g. churn left no node alive
    // to look up from); the phases after the abort report zeros.
    double aborted = 0.0;

    // Live-churn mode accounting (zero when live.enabled is false).
    double live_crashes = 0.0;
    double live_joins = 0.0;
    double live_recoveries = 0.0;
    double live_refreshes = 0.0;

    // Energy / duty-cycle accounting (all zero when world.energy is off).
    double energy_consumed_j = 0.0;  // joules drawn over the run, all nodes
    double joules_per_lookup = 0.0;  // lookup-phase draw / lookup count
    double energy_depletions = 0.0;  // batteries that ran dry (nodes died)
    double energy_sleep_transitions = 0.0;
    // Network lifetime marks; -1.0 = never reached during the run.
    double time_to_first_partition_s = 0.0;
    double time_to_half_depletion_s = 0.0;
    // Timed-quorum accounting (zero when value_lease == 0).
    double lease_expirations = 0.0;   // stored values evicted by lease
    double refreshes_deferred = 0.0;  // refresher ticks that found the
                                      // owner asleep and rescheduled

    // Time-bucketed live-phase outcomes (empty unless live.enabled).
    std::vector<LiveSample> live_samples;

    // Simulator events processed by the run (deterministic for a seed);
    // stored as double so it participates in the generic aggregation and
    // stays exact up to 2^53 events.
    double sim_events = 0.0;

    // Bytes of node-lifetime state placed in the world's bump arena
    // (high-water mark). Deterministic for a seed — the layout-level
    // memory cost companion to the host-dependent peak RSS that
    // exp::report_perf prints next to it.
    double arena_high_water = 0.0;

    // Kernel counters (event queue + spatial grid) at the end of the run;
    // deterministic for a seed. Aggregation sums these across runs (like
    // `totals`, they are raw counts, not per-run means).
    util::KernelStats kernel;

    // Log-bucketed latencies of successful lookups (p50/p95/p99 via
    // quantile()). Always populated — it costs one array increment per
    // lookup — and merged across runs like `kernel`.
    obs::LatencyHistogram latency_hist;

    util::MetricSet totals;  // raw world counters at the end
};

// One scalar metric of a ScenarioResult, addressable generically so
// multi-run aggregation (means, error bars, cross-thread-count equality
// checks) never needs a hand-written field-by-field loop.
struct ScenarioMetric {
    const char* name;
    double (*get)(const ScenarioResult&);
    void (*set)(ScenarioResult&, double);
};

// Every scalar metric of ScenarioResult, in declaration order.
const std::vector<ScenarioMetric>& scenario_metrics();

// Multi-run summary: per-metric mean and sample standard deviation (the
// paper plots 10-run means with error bars on every figure point).
struct ScenarioAggregate {
    ScenarioResult mean;    // also carries n/quorum sizes and merged totals
    ScenarioResult stddev;  // sample stddev per metric; zero when runs < 2
    int runs = 0;
};

// Reduces independent runs (in the given order, so results are identical
// for any execution schedule that preserves indexing) into mean + stddev.
ScenarioAggregate aggregate_scenarios(
    const std::vector<ScenarioResult>& results);

ScenarioResult run_scenario(const ScenarioParams& params);

// Aggregates `runs` scenario executions with seeds seed_base+0..runs-1.
// Runs execute in parallel on the PQS_THREADS pool (see util/parallel.h);
// the aggregate is bit-identical for every thread count.
ScenarioAggregate run_scenario_averaged(ScenarioParams params, int runs,
                                        std::uint64_t seed_base = 1);

// Runs `count` operations back to back: each op's completion callback
// schedules the next launch after `spacing`. Drives the simulator until
// all ops completed, the deadline passed, or *abort became true. The
// continuation state is shared-owned by every scheduled event, so ops
// still in flight when the driver gives up stay safe to resolve later.
// Exposed for the scenario driver's regression tests.
void run_sequential(net::World& world, std::size_t count, sim::Time spacing,
                    sim::Time per_op_budget,
                    std::function<void(std::size_t, std::function<void()>)> op,
                    const bool* abort = nullptr);

}  // namespace pqs::core
