// End-to-end experiment driver reproducing the paper's simulation scenario
// (§2.4, §8): build a network, run a warm-up, perform a batch of
// advertisements by random nodes, optionally apply churn, then perform a
// batch of lookups from a set of random nodes, and report the paper's
// metrics (hit ratio, network-layer messages per operation, additional
// routing overhead, reply drops, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "core/location_service.h"
#include "membership/oracle_membership.h"
#include "net/world.h"
#include "util/kernel_stats.h"
#include "util/stats.h"

namespace pqs::core {

struct ScenarioParams {
    net::WorldParams world;
    BiquorumSpec spec;
    bool use_membership = true;  // attach an oracle membership service
    // Membership view size; 0 keeps the paper's default of 2*sqrt(n).
    std::size_t membership_view = 0;

    std::size_t advertise_count = 100;  // paper: 100
    std::size_t lookup_count = 1000;    // paper: 1000
    std::size_t lookup_nodes = 25;      // paper: 25 random querying nodes
    sim::Time warmup = 15 * sim::kSecond;
    sim::Time op_spacing = 200 * sim::kMillisecond;
    sim::Time op_timeout = 20 * sim::kSecond;

    // Look up keys that were never advertised (measures the cost of a
    // miss: the full quorum is paid, no early halting — Fig. 16).
    bool lookup_missing_keys = false;

    // Churn applied between the advertise and lookup phases (Fig. 14(f)):
    // fractions of the post-advertise network that fail / join.
    double fail_fraction = 0.0;
    double join_fraction = 0.0;
    // Re-derive the lookup quorum size from n(t) after churn (§6.1 case b).
    bool adjust_lookup_to_network = false;
};

struct ScenarioResult {
    std::size_t n = 0;
    std::size_t advertise_quorum = 0;
    std::size_t lookup_quorum = 0;

    // Lookup-phase outcomes.
    double hit_ratio = 0.0;        // replies received / lookups
    double intersect_ratio = 0.0;  // quorums intersected / lookups
    double reply_drop_ratio = 0.0; // intersected but reply lost
    double avg_lookup_nodes = 0.0; // quorum nodes contacted per lookup
    double avg_lookup_latency_s = 0.0;

    // Advertise-phase outcomes.
    double advertise_ok_ratio = 0.0;
    double avg_advertise_nodes = 0.0;

    // Message accounting (network-layer transmissions per operation).
    double msgs_per_advertise = 0.0;
    double routing_per_advertise = 0.0;
    double msgs_per_lookup = 0.0;
    double routing_per_lookup = 0.0;

    // §3 load metric over the whole run (advertise + lookup phases).
    LoadSummary load;

    // Simulator events processed by the run (deterministic for a seed);
    // stored as double so it participates in the generic aggregation and
    // stays exact up to 2^53 events.
    double sim_events = 0.0;

    // Kernel counters (event queue + spatial grid) at the end of the run;
    // deterministic for a seed. Aggregation sums these across runs (like
    // `totals`, they are raw counts, not per-run means).
    util::KernelStats kernel;

    util::MetricSet totals;  // raw world counters at the end
};

// One scalar metric of a ScenarioResult, addressable generically so
// multi-run aggregation (means, error bars, cross-thread-count equality
// checks) never needs a hand-written field-by-field loop.
struct ScenarioMetric {
    const char* name;
    double (*get)(const ScenarioResult&);
    void (*set)(ScenarioResult&, double);
};

// Every scalar metric of ScenarioResult, in declaration order.
const std::vector<ScenarioMetric>& scenario_metrics();

// Multi-run summary: per-metric mean and sample standard deviation (the
// paper plots 10-run means with error bars on every figure point).
struct ScenarioAggregate {
    ScenarioResult mean;    // also carries n/quorum sizes and merged totals
    ScenarioResult stddev;  // sample stddev per metric; zero when runs < 2
    int runs = 0;
};

// Reduces independent runs (in the given order, so results are identical
// for any execution schedule that preserves indexing) into mean + stddev.
ScenarioAggregate aggregate_scenarios(
    const std::vector<ScenarioResult>& results);

ScenarioResult run_scenario(const ScenarioParams& params);

// Aggregates `runs` scenario executions with seeds seed_base+0..runs-1.
// Runs execute in parallel on the PQS_THREADS pool (see util/parallel.h);
// the aggregate is bit-identical for every thread count.
ScenarioAggregate run_scenario_averaged(ScenarioParams params, int runs,
                                        std::uint64_t seed_base = 1);

}  // namespace pqs::core
