// End-to-end experiment driver reproducing the paper's simulation scenario
// (§2.4, §8): build a network, run a warm-up, perform a batch of
// advertisements by random nodes, optionally apply churn, then perform a
// batch of lookups from a set of random nodes, and report the paper's
// metrics (hit ratio, network-layer messages per operation, additional
// routing overhead, reply drops, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "core/location_service.h"
#include "membership/oracle_membership.h"
#include "net/world.h"
#include "util/stats.h"

namespace pqs::core {

struct ScenarioParams {
    net::WorldParams world;
    BiquorumSpec spec;
    bool use_membership = true;  // attach an oracle membership service
    // Membership view size; 0 keeps the paper's default of 2*sqrt(n).
    std::size_t membership_view = 0;

    std::size_t advertise_count = 100;  // paper: 100
    std::size_t lookup_count = 1000;    // paper: 1000
    std::size_t lookup_nodes = 25;      // paper: 25 random querying nodes
    sim::Time warmup = 15 * sim::kSecond;
    sim::Time op_spacing = 200 * sim::kMillisecond;
    sim::Time op_timeout = 20 * sim::kSecond;

    // Look up keys that were never advertised (measures the cost of a
    // miss: the full quorum is paid, no early halting — Fig. 16).
    bool lookup_missing_keys = false;

    // Churn applied between the advertise and lookup phases (Fig. 14(f)):
    // fractions of the post-advertise network that fail / join.
    double fail_fraction = 0.0;
    double join_fraction = 0.0;
    // Re-derive the lookup quorum size from n(t) after churn (§6.1 case b).
    bool adjust_lookup_to_network = false;
};

struct ScenarioResult {
    std::size_t n = 0;
    std::size_t advertise_quorum = 0;
    std::size_t lookup_quorum = 0;

    // Lookup-phase outcomes.
    double hit_ratio = 0.0;        // replies received / lookups
    double intersect_ratio = 0.0;  // quorums intersected / lookups
    double reply_drop_ratio = 0.0; // intersected but reply lost
    double avg_lookup_nodes = 0.0; // quorum nodes contacted per lookup
    double avg_lookup_latency_s = 0.0;

    // Advertise-phase outcomes.
    double advertise_ok_ratio = 0.0;
    double avg_advertise_nodes = 0.0;

    // Message accounting (network-layer transmissions per operation).
    double msgs_per_advertise = 0.0;
    double routing_per_advertise = 0.0;
    double msgs_per_lookup = 0.0;
    double routing_per_lookup = 0.0;

    // §3 load metric over the whole run (advertise + lookup phases).
    LoadSummary load;

    util::MetricSet totals;  // raw world counters at the end
};

ScenarioResult run_scenario(const ScenarioParams& params);

// Averages `runs` scenario executions with seeds seed_base+0..runs-1.
ScenarioResult run_scenario_averaged(ScenarioParams params, int runs,
                                     std::uint64_t seed_base = 1);

}  // namespace pqs::core
