#include "core/reply_path.h"

#include <algorithm>

#include "net/node_stack.h"
#include "net/tamper.h"
#include "obs/trace.h"

namespace pqs::core {

void ReplyPathRouter::attach_node(util::NodeId id) {
    world_.stack(id).add_app_handler(
        [this, id](util::NodeId, util::NodeId, const net::AppMsgPtr& msg) {
            const auto reply =
                std::dynamic_pointer_cast<const ReverseReplyMsg>(msg);
            if (!reply) {
                return false;
            }
            forward(id, reply);
            return true;
        });
}

void ReplyPathRouter::start_reply(util::NodeId at, std::uint32_t strategy_tag,
                                  util::AccessId op, util::Key key,
                                  Value value,
                                  const std::vector<util::NodeId>& forward_path,
                                  ReplyOptions options,
                                  std::shared_ptr<ReplyTracker> tracker,
                                  obs::TraceId trace) {
    if (net::ReplyTamper* tamper = world_.tamper()) {
        // Byzantine responder: may forge the value in place or suppress
        // the reply outright. Silent on suppression — the tracker is not
        // marked dropped, so the origin cannot tell a faulty member from
        // a slow one.
        if (!tamper->on_reply_value(at, key, value, trace)) {
            return;
        }
    }
    auto msg = std::make_shared<ReverseReplyMsg>();
    msg->trace = trace;
    msg->strategy_tag = strategy_tag;
    msg->op = op;
    msg->key = key;
    msg->value = value;
    msg->options = options;
    msg->tracker = std::move(tracker);
    // Reverse the forward path and strip the current node from its front;
    // the remaining sequence ends at the origin.
    msg->hops.assign(forward_path.rbegin(), forward_path.rend());
    while (!msg->hops.empty() && msg->hops.front() == at) {
        msg->hops.erase(msg->hops.begin());
    }
    obs::record(trace, obs::EventKind::kReplyStarted, at, msg->hops.size());
    forward(at, std::move(msg));
}

void ReplyPathRouter::forward(util::NodeId at,
                              std::shared_ptr<const ReverseReplyMsg> msg) {
    if (msg->options.cache_at_relays && cache_) {
        cache_(at, msg->key, msg->value);
    }
    if (msg->hops.empty()) {
        // `at` is the origin.
        obs::record(msg->trace, obs::EventKind::kReplyDelivered, at);
        if (msg->tracker) {
            msg->tracker->delivered = true;
        }
        if (deliver_) {
            deliver_(at, *msg);
        }
        return;
    }
    // awake(), not alive(): a duty-cycled relay that fell asleep holding
    // the reply cannot transmit it — its radio is off. Forging ahead would
    // burn a doomed unicast per remaining hop (each send from the sleeping
    // node fails, each failure triggers salvage from the same sleeping
    // node) before the reply died anyway. Drop it here so the loss is
    // censored into the op's timeout accounting, same as a crashed relay.
    if (!world_.awake(at)) {
        obs::record(msg->trace, obs::EventKind::kReplyDropped, at);
        if (msg->tracker) {
            msg->tracker->mark_dropped();
        }
        return;
    }
    net::NodeStack& stack = world_.stack(at);

    std::size_t next_index = 0;
    if (msg->options.path_reduction) {
        // §7.2: jump to the furthest path node that is currently a direct
        // neighbor (the origin itself included).
        for (std::size_t j = msg->hops.size(); j-- > 0;) {
            if (stack.is_neighbor(msg->hops[j])) {
                next_index = j;
                break;
            }
        }
    }

    auto next_msg = std::make_shared<ReverseReplyMsg>(*msg);
    next_msg->hops.erase(next_msg->hops.begin(),
                         next_msg->hops.begin() +
                             static_cast<std::ptrdiff_t>(next_index));
    const util::NodeId next_hop = next_msg->hops.front();
    next_msg->hops.erase(next_msg->hops.begin());

    std::shared_ptr<const ReverseReplyMsg> out = next_msg;
    stack.send_unicast(next_hop, out, [this, at, out, next_hop](bool ok) {
        if (ok) {
            return;
        }
        // The next hop moved away or died.
        if (!out->options.local_repair) {
            obs::record(out->trace, obs::EventKind::kReplyDropped, at);
            if (out->tracker) {
                out->tracker->mark_dropped();
            }
            return;
        }
        if (out->hops.empty()) {
            // The failed hop was the origin itself: unrestricted routing is
            // the only option left (§6.2).
            if (!out->options.global_fallback) {
                obs::record(out->trace, obs::EventKind::kReplyDropped, at);
                if (out->tracker) {
                    out->tracker->mark_dropped();
                }
                return;
            }
            if (out->tracker) {
                ++out->tracker->repairs;
            }
            obs::record(out->trace, obs::EventKind::kReplyRepair, at,
                        out->hops.size());
            world_.stack(at).send_routed(
                next_hop, out,
                [out, at](bool delivered) {
                    if (!delivered) {
                        obs::record(out->trace,
                                    obs::EventKind::kReplyDropped, at);
                        if (out->tracker) {
                            out->tracker->mark_dropped();
                        }
                    }
                },
                net::RouteSendOptions{});
            return;
        }
        // Try successive path nodes via TTL-scoped routing (§6.2).
        repair(at, out, 0);
    });
}

void ReplyPathRouter::repair(util::NodeId at,
                             std::shared_ptr<const ReverseReplyMsg> msg,
                             std::size_t hop_index) {
    // msg->hops already excludes the hop whose unicast failed... except it
    // does include all *remaining* nodes after that hop: hops[hop_index] is
    // the next candidate target.
    if (!world_.awake(at)) {  // asleep == cannot transmit; see forward()
        obs::record(msg->trace, obs::EventKind::kReplyDropped, at);
        if (msg->tracker) {
            msg->tracker->mark_dropped();
        }
        return;
    }
    if (hop_index >= msg->hops.size()) {
        // All intermediate candidates failed; last resort is the origin.
        obs::record(msg->trace, obs::EventKind::kReplyDropped, at);
        if (msg->tracker) {
            msg->tracker->mark_dropped();
        }
        return;
    }
    const bool last = hop_index + 1 == msg->hops.size();  // origin itself
    const util::NodeId target = msg->hops[hop_index];

    auto fwd = std::make_shared<ReverseReplyMsg>(*msg);
    fwd->hops.erase(fwd->hops.begin(),
                    fwd->hops.begin() +
                        static_cast<std::ptrdiff_t>(hop_index + 1));
    if (fwd->tracker) {
        ++fwd->tracker->repairs;
    }
    obs::record(msg->trace, obs::EventKind::kReplyRepair, at, hop_index);
    net::RouteSendOptions opts;
    opts.max_discovery_ttl = msg->options.repair_ttl;
    if (last && msg->options.global_fallback) {
        // §6.2: if the final hop cannot be found within TTL-3 either, fall
        // back to unrestricted routing rather than dropping the reply.
        opts.max_discovery_ttl = -1;
    }
    world_.stack(at).send_routed(
        target, fwd,
        [this, at, msg, hop_index](bool delivered) {
            if (delivered) {
                return;  // the reply continues from `target` on arrival
            }
            repair(at, msg, hop_index + 1);
        },
        opts);
}

}  // namespace pqs::core
