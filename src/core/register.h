// Probabilistic read/write registers over a biquorum system (§2.5 strict
// semantics, §10): the classic two-phase quorum register (Attiya-Bar-Noy-
// Dolev style) on top of probabilistic quorums, yielding *probabilistic
// linearizability* — every operation behaves atomically with probability
// >= the quorum intersection guarantee.
//
//  write(v):  phase 1 — read the current version from a lookup quorum;
//             phase 2 — store (version+1, v) at an advertise quorum.
//  read():    phase 1 — query a lookup quorum and take the highest
//             version; phase 2 (optional write-back) — re-advertise that
//             value so later reads cannot see an older one.
//
// Requirements on the biquorum spec (checked at construction):
//  - the lookup side collects all replies (collect_all_replies), so reads
//    see the highest version present in the quorum, not the first reply;
//  - the advertise side stores monotonically (monotonic_store), so an old
//    write can never clobber a newer one at a shared quorum member.
#pragma once

#include <cstdint>

#include "core/biquorum.h"

namespace pqs::core {

// A register value: 32-bit version in the high bits, 32-bit payload in the
// low bits — numeric order == version order, which is exactly what the
// monotonic store compares.
struct Versioned {
    std::uint32_t version = 0;
    std::uint32_t data = 0;

    friend bool operator==(const Versioned&, const Versioned&) = default;
};

// The last representable version. A write that would need kMaxVersion + 1
// must fail with WriteResult::overflow instead of wrapping to 0: a wrapped
// write packs below every existing value, so the monotonic store would
// silently discard it — or, worse, clobber data on nodes that never saw
// the high-version value.
inline constexpr std::uint32_t kMaxVersion = 0xffffffffu;

constexpr Value pack(Versioned v) {
    return (static_cast<Value>(v.version) << 32) | v.data;
}

constexpr Versioned unpack(Value value) {
    return Versioned{static_cast<std::uint32_t>(value >> 32),
                     static_cast<std::uint32_t>(value & 0xffffffffULL)};
}

// Highest version among trustworthy replies of a collected lookup: all of
// them at b = 0, only values with > b concurring replies under b-masking
// (a forged reply can carry an arbitrarily high version). Shared by
// RegisterService and the svc/ key-value path.
Versioned highest_versioned(const AccessResult& r, std::size_t b);

class RegisterService {
public:
    // `key` names the register inside the shared biquorum system. Throws
    // std::invalid_argument if the spec lacks collect_all_replies /
    // monotonic_store (see above).
    RegisterService(BiquorumSystem& biquorum, util::Key key);

    struct ReadResult {
        bool ok = false;  // a quorum member held the register
        // b-masking (spec.byzantine_b > 0): replies arrived but no value
        // reached > b concurring votes — nothing can be trusted.
        bool inconclusive = false;
        Versioned value;
    };
    using ReadCallback = std::function<void(const ReadResult&)>;
    // `write_back` re-advertises the value read (the ABD second phase);
    // costs one advertise access but makes reads atomic, not just regular.
    void read(util::NodeId origin, ReadCallback done,
              bool write_back = false);

    struct WriteResult {
        bool ok = false;
        // The register's version counter is saturated (phase 1 observed
        // kMaxVersion): the write was refused rather than wrapped to
        // version 0, which would clobber newer data (§6.1 monotonicity).
        bool overflow = false;
        // b-masking: phase 1 could not establish a trustworthy version
        // base, so no version was assigned.
        bool inconclusive = false;
        // On ok: the version this write stored. On overflow: kMaxVersion.
        std::uint32_t version = 0;
    };
    using WriteCallback = std::function<void(const WriteResult&)>;
    void write(util::NodeId origin, std::uint32_t data, WriteCallback done);

    util::Key key() const { return key_; }

private:
    BiquorumSystem& biquorum_;
    util::Key key_;
};

}  // namespace pqs::core
