// Probabilistic read/write registers over a biquorum system (§2.5 strict
// semantics, §10): the classic two-phase quorum register (Attiya-Bar-Noy-
// Dolev style) on top of probabilistic quorums, yielding *probabilistic
// linearizability* — every operation behaves atomically with probability
// >= the quorum intersection guarantee.
//
//  write(v):  phase 1 — read the current version from a lookup quorum;
//             phase 2 — store (version+1, v) at an advertise quorum.
//  read():    phase 1 — query a lookup quorum and take the highest
//             version; phase 2 (optional write-back) — re-advertise that
//             value so later reads cannot see an older one.
//
// Requirements on the biquorum spec (checked at construction):
//  - the lookup side collects all replies (collect_all_replies), so reads
//    see the highest version present in the quorum, not the first reply;
//  - the advertise side stores monotonically (monotonic_store), so an old
//    write can never clobber a newer one at a shared quorum member.
#pragma once

#include <cstdint>

#include "core/biquorum.h"

namespace pqs::core {

// A register value: 32-bit version in the high bits, 32-bit payload in the
// low bits — numeric order == version order, which is exactly what the
// monotonic store compares.
struct Versioned {
    std::uint32_t version = 0;
    std::uint32_t data = 0;

    friend bool operator==(const Versioned&, const Versioned&) = default;
};

constexpr Value pack(Versioned v) {
    return (static_cast<Value>(v.version) << 32) | v.data;
}

constexpr Versioned unpack(Value value) {
    return Versioned{static_cast<std::uint32_t>(value >> 32),
                     static_cast<std::uint32_t>(value & 0xffffffffULL)};
}

class RegisterService {
public:
    // `key` names the register inside the shared biquorum system. Throws
    // std::invalid_argument if the spec lacks collect_all_replies /
    // monotonic_store (see above).
    RegisterService(BiquorumSystem& biquorum, util::Key key);

    struct ReadResult {
        bool ok = false;  // a quorum member held the register
        // b-masking (spec.byzantine_b > 0): replies arrived but no value
        // reached > b concurring votes — nothing can be trusted.
        bool inconclusive = false;
        Versioned value;
    };
    using ReadCallback = std::function<void(const ReadResult&)>;
    // `write_back` re-advertises the value read (the ABD second phase);
    // costs one advertise access but makes reads atomic, not just regular.
    void read(util::NodeId origin, ReadCallback done,
              bool write_back = false);

    using WriteCallback =
        std::function<void(bool ok, std::uint32_t version)>;
    void write(util::NodeId origin, std::uint32_t data, WriteCallback done);

    util::Key key() const { return key_; }

private:
    // Highest version among trustworthy replies: all of them at b = 0,
    // only values with > b concurring replies under b-masking.
    static Versioned max_of(const AccessResult& r, std::size_t b);

    BiquorumSystem& biquorum_;
    util::Key key_;
};

}  // namespace pqs::core
