// Timed / leased quorums (Gramoli–Raynal, PAPERS.md): every value an
// advertise quorum stores carries a lease Δ. When the lease runs out the
// holder evicts the entry — on the simulator's calendar event tier, since
// leases are typically far-future relative to packet events — so a value
// whose owner stopped refreshing it disappears from the system instead of
// going silently stale. Re-advertising (including the QuorumRefresher's
// periodic refresh) extends the lease, which turns the §6.1 refresh
// analysis into an explicit consistency knob: theory.h's
// timed_quorum_miss_bound gives ε as a function of Δ, the refresh
// interval and the duty cycle.
//
// Lifetime: every expiry event captures `this`; the manager tracks each
// pending event id and cancels all of them in its destructor, so tearing
// down a LocationService mid-run never leaves the simulator holding
// callbacks into freed stores (the event-lifetime bug class pqs_lint
// checks for).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/store.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/ids.h"

namespace pqs::core {

class LeaseManager {
public:
    // `stores` is the owning service's per-node store vector; the pointer
    // stays valid across element reallocation (only elements move).
    LeaseManager(sim::Simulator& simulator, std::vector<LocalStore>* stores)
        : simulator_(simulator), stores_(stores) {}
    ~LeaseManager() { cancel_all(); }
    LeaseManager(const LeaseManager&) = delete;
    LeaseManager& operator=(const LeaseManager&) = delete;

    // Arms (or extends) the expiry for (holder, key): the value dies
    // `lease` from now unless re-advertised first. lease <= 0 is a no-op.
    void arm(util::NodeId holder, util::Key key, sim::Time lease);

    // Cancels every pending expiry without evicting anything.
    void cancel_all();

    // Optional external counter (the world's app-stats block) bumped on
    // every expiry alongside the local count.
    void set_expire_counter(std::uint64_t* counter) {
        expire_counter_ = counter;
    }

    std::uint64_t expirations() const { return expirations_; }
    std::size_t pending() const { return pending_.size(); }

private:
    void expire(util::NodeId holder, util::Key key);

    sim::Simulator& simulator_;
    std::vector<LocalStore>* stores_;
    // Ordered map keeps teardown iteration deterministic.
    std::map<std::pair<util::NodeId, util::Key>, sim::EventId> pending_;
    std::uint64_t expirations_ = 0;
    std::uint64_t* expire_counter_ = nullptr;
};

}  // namespace pqs::core
