// Binds a sim::ByzantinePlan to the net-layer reply tamper hook: the
// colluding adversary that drops, stales, fabricates, or replays quorum
// replies emitted by marked nodes. Installs itself as the World's tamper
// on construction and uninstalls on destruction. It schedules no events
// and draws no randomness — every behavior is a pure function of the plan
// and the traffic it observes — so constructing no adversary (or b = 0)
// leaves RNG streams and the golden fingerprint bit-identical.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/metrics.h"
#include "net/tamper.h"
#include "net/world.h"
#include "sim/byzantine_plan.h"
#include "util/ids.h"

namespace pqs::core {

class ByzantineAdversary final : public net::ReplyTamper {
public:
    ByzantineAdversary(net::World& world, sim::ByzantinePlan& plan);
    ~ByzantineAdversary() override;
    ByzantineAdversary(const ByzantineAdversary&) = delete;
    ByzantineAdversary& operator=(const ByzantineAdversary&) = delete;

    // net::ReplyTamper: direct quorum replies (RANDOM strategies) and
    // in-transit reverse-path reply hops.
    net::TamperVerdict on_send(util::NodeId at, const net::AppMsgPtr& msg,
                               net::AppMsgPtr& forged) override;
    // Walk-reply origination (PATH / UNIQUE-PATH / sampling / FLOODING).
    bool on_reply_value(util::NodeId at, std::uint64_t key,
                        std::uint64_t& value, std::uint64_t trace) override;
    // Miss-path forging: a faulty quorum member answers lookups for keys
    // it does not hold (drop-behavior nodes stay silent — silence is
    // their whole repertoire).
    bool on_lookup_miss(util::NodeId at, std::uint64_t key,
                        std::uint64_t& forged_value) override;

    // Deterministic *colluding* fabrication: every fabricator answers the
    // same forged value for a key — the worst case the masking bound
    // prices, where all b faulty replies concur.
    static Value fabricate(util::Key key);

private:
    // Applies `behavior` to a (key, value) reply payload. Returns false
    // when the reply must be suppressed; otherwise value may be forged in
    // place. `found` distinguishes hit replies (whose truthful value the
    // colluding adversary memorizes) from negative ones.
    bool tamper_value(sim::ByzantineBehavior behavior, util::Key key,
                      Value& value, bool found);

    net::World& world_;
    sim::ByzantinePlan& plan_;
    // Collusion memory: the first value ever seen per key (the stale lie)
    // and the previous reply per key (the replay source).
    std::unordered_map<util::Key, Value> first_seen_;
    std::unordered_map<util::Key, Value> last_reply_;
    // Keys with a miss-forged reply between on_lookup_miss and the
    // synchronous send that follows: on_send passes those through without
    // tampering (or counting) them a second time.
    std::unordered_map<util::Key, std::size_t> miss_lies_in_flight_;
};

}  // namespace pqs::core
