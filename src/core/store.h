// Per-node storage of the location service (§7.1): "owner" entries are the
// node's responsibility as an advertise-quorum member; "bystander" entries
// are opportunistic caches from traffic that passed through and may be
// dropped under memory pressure.
#pragma once

#include <optional>
#include <unordered_map>

#include "core/metrics.h"
#include "util/ids.h"

namespace pqs::core {

class LocalStore {
public:
    void store_owner(util::Key key, Value value) {
        owners_[key] = value;
        bystanders_.erase(key);
    }

    void store_bystander(util::Key key, Value value) {
        if (!owners_.contains(key)) {
            bystanders_[key] = value;
        }
    }

    std::optional<Value> find(util::Key key) const {
        if (const auto it = owners_.find(key); it != owners_.end()) {
            return it->second;
        }
        if (const auto it = bystanders_.find(key); it != bystanders_.end()) {
            return it->second;
        }
        return std::nullopt;
    }

    bool is_owner(util::Key key) const { return owners_.contains(key); }
    bool has(util::Key key) const { return find(key).has_value(); }

    // Lease expiry (timed quorums): the key's entry — owner or bystander
    // — is dropped as if it had never been advertised.
    void erase(util::Key key) {
        owners_.erase(key);
        bystanders_.erase(key);
    }

    // Memory-pressure relief: bystander entries are expendable (§7.1).
    void clear_bystanders() { bystanders_.clear(); }
    void clear() {
        owners_.clear();
        bystanders_.clear();
    }

    std::size_t owner_count() const { return owners_.size(); }
    std::size_t bystander_count() const { return bystanders_.size(); }
    const std::unordered_map<util::Key, Value>& owners() const {
        return owners_;
    }

private:
    std::unordered_map<util::Key, Value> owners_;
    std::unordered_map<util::Key, Value> bystanders_;
};

}  // namespace pqs::core
