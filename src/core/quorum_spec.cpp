#include "core/quorum_spec.h"

namespace pqs::core {

void BiquorumSpec::resolve_sizes(std::size_t n) {
    if (advertise.quorum_size == 0 && lookup.quorum_size == 0) {
        const std::size_t q = symmetric_quorum_size(n, eps);
        advertise.quorum_size = q;
        lookup.quorum_size = q;
        return;
    }
    if (advertise.quorum_size == 0) {
        advertise.quorum_size = lookup_size_for(lookup.quorum_size, n, eps);
    }
    if (lookup.quorum_size == 0) {
        lookup.quorum_size = lookup_size_for(advertise.quorum_size, n, eps);
    }
}

}  // namespace pqs::core
