#include "core/quorum_spec.h"

#include "core/theory.h"
#include "util/check.h"

namespace pqs::core {

void BiquorumSpec::resolve_sizes(std::size_t n) {
    const std::size_t b = byzantine_b;
    const bool derived =
        advertise.quorum_size == 0 || lookup.quorum_size == 0;
    if (advertise.quorum_size == 0 && lookup.quorum_size == 0) {
        const std::size_t q = masking_symmetric_quorum_size(n, eps, b);
        advertise.quorum_size = q;
        lookup.quorum_size = q;
    } else if (advertise.quorum_size == 0) {
        // Solve (qa-b)·qℓ ≥ n·μ_min for qa with qℓ fixed: size the correct
        // part against the lookup quorum, then add back the fault budget.
        advertise.quorum_size =
            masking_lookup_size_for(lookup.quorum_size + b, n, eps, b) + b;
    } else if (lookup.quorum_size == 0) {
        lookup.quorum_size =
            masking_lookup_size_for(advertise.quorum_size, n, eps, b);
    }
    if (b > 0) {
        // Voting tallies every reply; first-hit resolution cannot count
        // concurrence.
        lookup.collect_all_replies = true;
    }
    // Corollary 5.3 (resp. its masking generalization): any size this
    // function derived must honor the product bound. Explicitly-set pairs
    // are exempt — the degradation benches deliberately undersize quorums.
    const double correct_qa =
        advertise.quorum_size > b
            ? static_cast<double>(advertise.quorum_size - b)
            : 0.0;
    const double product =
        correct_qa * static_cast<double>(lookup.quorum_size);
    PQS_DCHECK(!derived ||
                   product + 1e-9 >= min_masking_quorum_product(n, eps, b),
               "derived quorum sizes violate the masking product bound: |Qa|="
                   << advertise.quorum_size << " |Ql|=" << lookup.quorum_size
                   << " n=" << n << " eps=" << eps << " b=" << b);
    static_cast<void>(derived);
    static_cast<void>(product);
}

}  // namespace pqs::core
