#include "core/quorum_spec.h"

#include "core/theory.h"
#include "util/check.h"

namespace pqs::core {

void BiquorumSpec::resolve_sizes(std::size_t n) {
    const bool derived =
        advertise.quorum_size == 0 || lookup.quorum_size == 0;
    if (advertise.quorum_size == 0 && lookup.quorum_size == 0) {
        const std::size_t q = symmetric_quorum_size(n, eps);
        advertise.quorum_size = q;
        lookup.quorum_size = q;
    } else if (advertise.quorum_size == 0) {
        advertise.quorum_size = lookup_size_for(lookup.quorum_size, n, eps);
    } else if (lookup.quorum_size == 0) {
        lookup.quorum_size = lookup_size_for(advertise.quorum_size, n, eps);
    }
    // Corollary 5.3: any size this function derived must honor the
    // |Qa|·|Qℓ| ≥ n·ln(1/ε) product bound. Explicitly-set pairs are
    // exempt — the degradation benches deliberately undersize quorums.
    const double product = static_cast<double>(advertise.quorum_size) *
                           static_cast<double>(lookup.quorum_size);
    PQS_DCHECK(!derived || product + 1e-9 >= min_quorum_product(n, eps),
               "derived quorum sizes violate Corollary 5.3: |Qa|="
                   << advertise.quorum_size << " |Ql|=" << lookup.quorum_size
                   << " n=" << n << " eps=" << eps);
    static_cast<void>(derived);
    static_cast<void>(product);
}

}  // namespace pqs::core
