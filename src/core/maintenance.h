// Quorum maintenance under churn and mobility (§6): when to refresh the
// quorum system so the intersection probability stays above a floor, plus
// a birthday-paradox network-size estimator (§6.3) used to adapt quorum
// sizes to n(t).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "core/location_service.h"
#include "core/theory.h"
#include "membership/membership.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/rng.h"

namespace pqs::core {

// Largest churn fraction f tolerable before the miss bound eps0 degrades
// past eps_max (inverse of degraded_miss_bound). Returns 1.0 when the
// configuration never degrades (failures-only with a fixed lookup size).
double max_tolerable_churn(double eps0, double eps_max, ChurnKind kind,
                           LookupSizing sizing);

// Refresh interval: with churn consuming `churn_fraction_per_sec` of the
// network per second, re-advertise every item at least this often (§6.1's
// "once a day" example).
sim::Time refresh_interval(double eps0, double eps_max, ChurnKind kind,
                           LookupSizing sizing,
                           double churn_fraction_per_sec);

// Periodically re-advertises every key a node has published, with the
// interval derived from the degradation analysis.
//
// A node's refresh chain survives transient death: a tick that finds the
// node dead skips the refresh work but reschedules itself, so a node that
// recovers (live churn) resumes refreshing with no outside help. Every
// pending tick is tracked by event id and cancelled in stop() / the
// destructor — a refresher destroyed before its simulator leaves no
// dangling [this] callbacks behind.
class QuorumRefresher {
public:
    struct Params {
        double eps_max = 0.2;  // minimum acceptable miss bound
        ChurnKind churn_kind = ChurnKind::kFailuresAndJoins;
        LookupSizing sizing = LookupSizing::kFixed;
        double churn_fraction_per_sec = 0.0;  // 0 => never refresh
        std::optional<sim::Time> explicit_interval;  // overrides the above
    };

    QuorumRefresher(LocationService& service, Params params);
    ~QuorumRefresher();
    QuorumRefresher(const QuorumRefresher&) = delete;
    QuorumRefresher& operator=(const QuorumRefresher&) = delete;

    // Begins refreshing for `node`. Safe to call for many nodes; calling
    // again for a node restarts its chain instead of doubling it.
    void start_node(util::NodeId node);

    // Cancels every node's pending tick. start_node() may be called again.
    void stop();

    sim::Time interval() const { return interval_; }
    std::size_t refreshes_performed() const { return refreshes_; }
    // Ticks that found the owner asleep (duty-cycled radio off) and
    // deferred instead of refreshing — see tick() for why asleep and dead
    // take different paths.
    std::size_t refreshes_deferred() const { return deferred_; }

    // Invoked after a node's keys were re-advertised. A re-advertise picks
    // fresh advertise quorums, so any cached lookup quorum for that node's
    // keys is stale from this moment — the svc/ key-value layer hooks this
    // to invalidate its per-key quorum cache.
    void set_on_refresh(std::function<void(util::NodeId)> hook) {
        on_refresh_ = std::move(hook);
    }

private:
    void tick(util::NodeId node);

    LocationService& service_;
    Params params_;
    sim::Time interval_;
    std::size_t refreshes_ = 0;
    std::size_t deferred_ = 0;
    std::function<void(util::NodeId)> on_refresh_;
    // Pending tick per node (cancellable).
    std::unordered_map<util::NodeId, sim::EventId> timers_;
};

// Estimates the network size by counting collisions among uniform samples
// drawn from a membership service (§6.3).
class NetworkSizeEstimator {
public:
    NetworkSizeEstimator(membership::MembershipService& membership,
                         util::Rng rng)
        : membership_(membership), rng_(rng) {}

    // Draws `samples` one-node samples at `node` and returns the
    // birthday-paradox estimate; nullopt when no collisions were observed
    // (sample more). Draws must be near-independent: within one membership
    // refresh period the view is fixed, so either let simulated time pass
    // between calls or prefer estimate_across().
    std::optional<double> estimate(util::NodeId node, std::size_t samples);

    // Draws one sample from each probe node's view (views are filled by
    // independent walks, so cross-node draws are independent even at one
    // instant — the way §6.3 counts collisions *between* random walks).
    std::optional<double> estimate_across(
        const std::vector<util::NodeId>& probes, std::size_t rounds = 1);

private:
    membership::MembershipService& membership_;
    util::Rng rng_;
};

}  // namespace pqs::core
