// The paper's driving application (§1, §10): a data location service /
// distributed dictionary built on a probabilistic biquorum system.
// Publishing stores a key->value mapping at an advertise quorum; lookups
// query a lookup quorum; the ε-intersection guarantee makes published data
// findable with probability >= 1-ε. Keeps a per-node registry of published
// keys so maintenance can refresh them (§6.1).
#pragma once

#include <unordered_map>

#include "core/biquorum.h"

namespace pqs::core {

class LocationService {
public:
    LocationService(net::World& world, BiquorumSpec spec,
                    membership::MembershipService* membership = nullptr);

    BiquorumSystem& biquorum() { return biquorum_; }
    net::World& world() { return world_; }

    // Publishes key -> value from `origin` (an advertise-quorum access).
    void advertise(util::NodeId origin, util::Key key, Value value,
                   AccessCallback done = nullptr);

    // Queries the mapping for `key` from `origin` (a lookup-quorum access).
    void lookup(util::NodeId origin, util::Key key, AccessCallback done);

    // Re-advertises everything `origin` has published (§6.1: probabilistic
    // quorums need no reconfiguration after churn — only a refresh).
    void refresh(util::NodeId origin, AccessCallback per_key_done = nullptr);

    // Registers key -> value in `origin`'s published set WITHOUT issuing
    // an advertise access. For clients that advertise through biquorum()
    // directly (the svc/ key-value path stores packed versioned values via
    // the register protocol) but still want QuorumRefresher to keep their
    // keys alive under churn. The stored value is whatever the caller last
    // recorded; with a monotonic advertise side, refreshing a superseded
    // value is harmless.
    void record_published(util::NodeId origin, util::Key key, Value value);

    // Keys `node` has published (its own advertisements, not stored data).
    const std::unordered_map<util::Key, Value>& published(
        util::NodeId node) const;

    LocalStore& store(util::NodeId id) { return biquorum_.store(id); }

private:
    net::World& world_;
    BiquorumSystem biquorum_;
    std::vector<std::unordered_map<util::Key, Value>> published_;
    std::unordered_map<util::Key, Value> empty_;
};

}  // namespace pqs::core
