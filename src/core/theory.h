// Closed-form results from the paper, used both by the runtime (quorum
// sizing, refresh scheduling) and by the benches that regenerate the
// analytic figures/tables (Figs. 3, 6, 7; Lemmas 5.1-5.6; Theorems 4.1,
// 5.5; §6.1 degradation; §6.3 size estimation).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/ids.h"

namespace pqs::core {

// ---------- Intersection probability (Lemmas 5.1 / 5.2) ----------

// Upper bound on Pr(Qa ∩ Ql = ∅) = exp(-|Qa||Ql|/n), valid whenever at
// least one quorum is chosen uniformly at random (Mix-and-Match Lemma 5.2).
double nonintersection_upper_bound(std::size_t qa, std::size_t ql,
                                   std::size_t n);

// Exact miss probability Π_{i=0}^{|Qa|-1} (n-|Ql|-i)/(n-i) from the proof
// of Lemma 5.2 (0 when |Qa|+|Ql| > n).
double nonintersection_exact(std::size_t qa, std::size_t ql, std::size_t n);

double intersection_probability(std::size_t qa, std::size_t ql,
                                std::size_t n);

// ---------- Quorum sizing (Corollary 5.3) ----------

// Minimal |Qa|·|Ql| product guaranteeing intersection prob >= 1-eps.
double min_quorum_product(std::size_t n, double eps);

// Symmetric size: ceil(sqrt(n ln(1/eps))).
std::size_t symmetric_quorum_size(std::size_t n, double eps);

// Given |Qa|, the minimal |Ql| meeting Corollary 5.3.
std::size_t lookup_size_for(std::size_t qa, std::size_t n, double eps);

// ---------- b-masking sizing (after Malkhi-Reiter-Wool) ----------
//
// Threat model: up to b Byzantine members that may drop or forge replies.
// A lookup masks them when the correct part of the intersection outvotes
// the faulty replies, i.e. X = |Qℓ ∩ (Qa \ B)| > b. The worst-case
// placement puts all b faulty nodes inside Qa, so X counts the hits of a
// uniform Qℓ on the qa-b correct members: E[X] = μ = (qa-b)·qℓ/n. The
// Poisson-dominated Chernoff lower tail gives
//
//   Pr[X <= b] <= exp(-μ)·(eμ/b)^b    for 1 <= b < μ,
//
// and exp(-μ) at b = 0 — exactly Lemma 5.1/Corollary 5.3, so every
// masking_* function below reduces to its ε-intersection counterpart at
// b = 0. (Sampling without replacement satisfies the binomial Chernoff
// bound by Hoeffding '63, and the binomial MGF is dominated by the
// Poisson MGF of the same mean, so the bound is rigorous, not heuristic.)

// Closed-form upper bound on Pr[masking failure] (clamped to <= 1;
// returns 1 whenever μ <= b, where the tail bound is vacuous).
double masking_failure_bound(std::size_t qa, std::size_t ql, std::size_t n,
                             std::size_t b);

// Smallest μ with masking_failure_bound <= eps (bisection on the closed
// form; exactly ln(1/eps) at b = 0).
double masking_mu_min(double eps, std::size_t b);

// Minimal (|Qa|-b)·|Qℓ| product guaranteeing masking prob >= 1-eps:
// n · masking_mu_min(eps, b).
double min_masking_quorum_product(std::size_t n, double eps, std::size_t b);

// Symmetric masking size: smallest q with (q-b)·q >= n·μ_min, i.e.
// ceil((b + sqrt(b² + 4·n·μ_min))/2). Delegates to symmetric_quorum_size
// at b = 0 so the reduction is bit-exact, not merely analytic.
std::size_t masking_symmetric_quorum_size(std::size_t n, double eps,
                                          std::size_t b);

// Given |Qa| > b, the minimal |Qℓ| with (|Qa|-b)·|Qℓ| >= n·μ_min.
// Delegates to lookup_size_for at b = 0.
std::size_t masking_lookup_size_for(std::size_t qa, std::size_t n, double eps,
                                    std::size_t b);

// MRW load of the symmetric probabilistic system: an access touches q of
// n nodes uniformly, so every node is accessed w.p. q/n and
// L(S) = max-node access probability = q/n.
double access_load(std::size_t q, std::size_t n);

// ---------- Optimal asymmetric sizing (Lemma 5.6) ----------

struct SizePair {
    std::size_t advertise = 0;
    std::size_t lookup = 0;
};

// Optimal |Ql|/|Qa| ratio: (1/tau) * (cost_a / cost_l), where tau is the
// lookup:advertise frequency ratio and cost_x the per-node access cost.
double optimal_size_ratio(double tau, double cost_a, double cost_l);

// Sizes meeting Corollary 5.3 at the Lemma 5.6 optimum.
SizePair optimal_sizes(std::size_t n, double eps, double tau, double cost_a,
                       double cost_l);

// Total access cost (Lemma 5.6 proof): advertisements + lookups.
double total_access_cost(double n_advertise, double n_lookup,
                         std::size_t qa, std::size_t ql, double cost_a,
                         double cost_l);

// ---------- Degradation under churn (§6.1, Fig. 7) ----------

enum class ChurnKind { kFailuresOnly, kJoinsOnly, kFailuresAndJoins };
enum class LookupSizing { kFixed, kAdjustedToNetworkSize };

// Upper bound on the miss probability after a fraction f of the network
// churned, starting from an initial bound eps0.
double degraded_miss_bound(double eps0, double f, ChurnKind kind,
                           LookupSizing sizing);

// ---------- Timed quorums & duty-cycled radios ----------
// (Gramoli–Raynal timed quorum systems; GeoQuorum's energy-constrained
// deployments. ε as a function of lease Δ, refresh rate and duty cycle.)

// Upper bound on the miss probability when every node independently
// spends fraction `duty` of each cycle awake (random phases): a holder
// that is asleep at lookup time neither receives nor answers the probe.
// With A ~ Bin(|Qa|, duty) awake holders and Pr[miss | A] <=
// exp(-A|Ql|/n) (Lemma 5.2 applied to the awake sub-quorum), taking the
// binomial expectation gives
//
//     E[exp(-A|Ql|/n)] = (1 - duty·(1 - e^{-|Ql|/n}))^{|Qa|}.
//
// Note the naive exp(-|Qa||Ql|·duty/n) — the eps0^duty curve — is NOT a
// valid upper bound: by convexity e^{-d·t} <= 1 - d + d·e^{-t}, so the
// mixture form above dominates it. At duty == 1 this delegates to
// nonintersection_upper_bound for a bit-exact reduction.
double duty_cycled_miss_bound(std::size_t qa, std::size_t ql, std::size_t n,
                              double duty);

// Steady-state fraction of time a leased value is live: values expire Δ
// (lease_s) after each advertise, and the owner re-advertises every R
// (refresh_interval_s) seconds, so each refresh window of length R is
// covered for min(Δ, R) of it: c = min(1, Δ/R). lease_s <= 0 means no
// expiry (c = 1); a finite lease with refresh_interval_s <= 0 is never
// refreshed (c -> 0 asymptotically).
double lease_coverage(double lease_s, double refresh_interval_s);

// ε(Δ, R, duty): the refresher re-advertises the *whole* quorum at once,
// so lease validity is fully correlated across holders — with
// probability 1-c the value has expired everywhere (certain miss), else
// the duty-cycle bound applies:
//
//     ε = (1 - c) + c · duty_cycled_miss_bound(qa, ql, n, duty).
double timed_quorum_miss_bound(std::size_t qa, std::size_t ql, std::size_t n,
                               double duty, double lease_s,
                               double refresh_interval_s);

// ---------- Failure resilience (§3, after Malkhi et al.) ----------

// Fault tolerance of a probabilistic quorum system with quorums of size q:
// the smallest node set intersecting all quorums has n - q + 1 nodes.
std::size_t fault_tolerance(std::size_t n, std::size_t q);

// Malkhi et al.'s failure-probability bound: with quorums of size k*sqrt(n)
// and independent crash probability p <= 1 - k/sqrt(n), the probability
// that *no* live quorum remains is at most exp(-n*(1-p-k/sqrt(n))^2 / 2)
// (Chernoff bound on the number of survivors). Returns 1 when p exceeds
// the tolerable range.
double failure_probability_bound(std::size_t n, double k, double p);

// Deterministic majority baseline: a strict majority quorum has size
// floor(n/2)+1 and tolerates ceil(n/2)-1 failures before losing liveness
// (vs Omega(n) fault tolerance at sqrt(n) size for probabilistic quorums).
std::size_t majority_quorum_size(std::size_t n);

// ---------- RGG / random-walk results ----------

// Gupta-Kumar connectivity radius for n uniform nodes on a unit square:
// r = sqrt(C ln n / (pi n)); the network is w.h.p. connected for C > 1.
double rgg_connectivity_radius(std::size_t n, double safety = 1.0);

// Expected hop diameter of the density-scaled RGG of §2.4:
// side/range = sqrt(pi n / d_avg), so diameter ~ sqrt(pi n / d_avg) hops.
double rgg_diameter_hops(std::size_t n, double avg_degree);

// Expected hop length of a route between two uniform nodes (~ half the
// corner-to-corner diameter; used for the Fig. 3/6 cost entries).
double expected_route_hops(std::size_t n, double avg_degree);

// Theorem 4.1: PCT(t) <= 2*alpha*t for t = o(n). alpha is the empirical
// revisit constant (~0.85 at d_avg = 10, i.e. 2*alpha ~ 1.7 -- §4.2).
double pct_upper_bound(std::size_t t, double alpha);

// Theorem 5.5: crossing time of two walks is Omega(r^-2); with the column
// projection argument the walk must cover (side/2r)^2 line steps.
double crossing_time_lower_bound(double side, double range);

// Mixing-time estimate of the MD walk on RGGs (~ n/2, Bar-Yossef et al.).
double md_mixing_time(std::size_t n);

// ---------- Asymptotic access-cost table (Figs. 3 and 6) ----------

enum class StrategyKind {
    kRandom,          // membership-based RANDOM
    kRandomSampling,  // sampling-based RANDOM (MD walks)
    kRandomOpt,
    kPath,
    kUniquePath,
    kFlooding,
};

std::string strategy_name(StrategyKind kind);

// Expected number of network-layer messages to access a quorum of size q
// with the given strategy on the density-scaled RGG (Fig. 3 rows; leading
// constants from the paper's empirical study).
double access_cost_messages(StrategyKind kind, std::size_t q, std::size_t n,
                            double avg_degree);

// ---------- Network size estimation (§6.3) ----------

// Birthday-paradox estimator: k uniform samples with c observed pairwise
// collisions give n ≈ k(k-1)/(2c).
double estimate_network_size(std::size_t samples, std::size_t collisions);
// Count pairwise collisions in a sample multiset and estimate n.
double estimate_network_size(const std::vector<util::NodeId>& samples);

}  // namespace pqs::core
