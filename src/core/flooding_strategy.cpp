#include "core/flooding_strategy.h"

#include <algorithm>

#include "net/node_stack.h"

namespace pqs::core {

namespace {
constexpr sim::Time kBroadcastJitter = 10 * sim::kMillisecond;
}

struct FloodingStrategy::FloodMsg final : net::AppMessage {
    std::uint32_t strategy_tag = 0;
    util::AccessId op;
    int round_ttl = 0;  // TTL the round started with (identifies the round)
    int ttl = 0;        // remaining hops
    AccessKind kind = AccessKind::kLookup;
    util::Key key = 0;
    Value value = 0;
    util::NodeId origin = util::kInvalidNode;
    double join_probability = 1.0;  // advertise floods: P(store)
    std::shared_ptr<FloodTracker> tracker;
    std::shared_ptr<IntersectionProbe> probe;

    std::size_t size_bytes() const override { return 512; }
};

struct FloodingStrategy::FloodReplyMsg final : net::AppMessage {
    std::uint32_t strategy_tag = 0;
    util::AccessId op;
    int round_ttl = 0;
    util::Key key = 0;
    Value value = 0;

    std::size_t size_bytes() const override { return 64; }
};

FloodingStrategy::FloodingStrategy(ServiceContext& ctx, StrategyConfig config,
                                   std::uint32_t tag)
    : AccessStrategy(ctx, config, tag),
      ops_(ctx.world.simulator()),
      rng_(ctx.world.rng().fork()) {}

sim::Time FloodingStrategy::settle_time(int ttl) const {
    // Per-ring rebroadcast jitter plus airtime, then reply time back.
    return (2 * ttl + 2) * (kBroadcastJitter + 15 * sim::kMillisecond) +
           500 * sim::kMillisecond;
}

void FloodingStrategy::attach_node(util::NodeId id) {
    if (parents_.size() <= id) {
        parents_.resize(id + 1);
    }
    ctx_.world.stack(id).add_app_handler(
        [this, id](util::NodeId prev, util::NodeId, const net::AppMsgPtr& msg) {
            if (const auto flood =
                    std::dynamic_pointer_cast<const FloodMsg>(msg);
                flood && flood->strategy_tag == tag_) {
                handle_flood(id, prev, flood);
                return true;
            }
            if (const auto reply =
                    std::dynamic_pointer_cast<const FloodReplyMsg>(msg);
                reply && reply->strategy_tag == tag_) {
                const RoundKey round{reply->op, reply->round_ttl};
                if (reply->op.origin == id) {
                    // Reached the flood's originator.
                    auto entry = ops_.find(reply->op);
                    if (entry) {
                        AccessResult result;
                        result.ok = true;
                        result.intersected = true;
                        result.value = reply->value;
                        result.nodes_contacted =
                            entry->state.tracker->covered;
                        ops_.resolve(reply->op, result);
                    }
                    return true;
                }
                // Relay along the recorded parent chain.
                const auto it = parents_[id].find(round);
                if (it != parents_[id].end()) {
                    ctx_.world.stack(id).send_unicast(it->second, msg,
                                                      nullptr);
                }
                return true;
            }
            return false;
        });
}

void FloodingStrategy::handle_flood(util::NodeId id, util::NodeId prev,
                                    std::shared_ptr<const FloodMsg> msg) {
    if (parents_.size() <= id) {
        parents_.resize(id + 1);
    }
    const RoundKey round{msg->op, msg->round_ttl};
    if (!parents_[id].emplace(round, prev).second) {
        return;  // duplicate copy of this flood round
    }
    ++msg->tracker->covered;
    ctx_.count_load(id);
    obs::record(msg->trace, obs::EventKind::kQuorumMemberReached, id,
                msg->tracker->covered);

    LocalStore& store = ctx_.store(id);
    if (msg->kind == AccessKind::kAdvertise) {
        if (msg->join_probability >= 1.0 ||
            rng_.bernoulli(msg->join_probability)) {
            ctx_.store_value(id, msg->key, msg->value,
                             config_.monotonic_store);
            ++msg->tracker->joined;
        }
    } else if (const std::optional<Value> found = store.find(msg->key)) {
        msg->tracker->hit = true;
        if (msg->probe) {
            msg->probe->intersected = true;
        }
        send_reply_chain(id, *msg, *found);
        // Flooding has no early halting (§4.4): the flood keeps expanding.
    }

    if (msg->ttl <= 1) {
        return;
    }
    auto fwd = std::make_shared<FloodMsg>(*msg);
    fwd->ttl = msg->ttl - 1;
    // Jitter the rebroadcast to desynchronize neighbors (§4.4).
    const sim::Time jitter = static_cast<sim::Time>(
        rng_.uniform_u64(static_cast<std::uint64_t>(kBroadcastJitter) + 1));
    // pqs-lint: fire-and-forget(strategy lives in the World-owned service
    // for the whole run; the body re-checks alive(id) before touching it)
    ctx_.world.simulator().schedule_in(jitter, [this, id, fwd] {
        if (ctx_.world.alive(id)) {
            ctx_.world.stack(id).send_broadcast(fwd);
        }
    });
}

void FloodingStrategy::send_reply_chain(util::NodeId id, const FloodMsg& msg,
                                        Value value) {
    auto reply = std::make_shared<FloodReplyMsg>();
    reply->trace = msg.trace;
    reply->strategy_tag = tag_;
    reply->op = msg.op;
    reply->round_ttl = msg.round_ttl;
    reply->key = msg.key;
    reply->value = value;
    const RoundKey round{msg.op, msg.round_ttl};
    const auto it = parents_[id].find(round);
    if (it == parents_[id].end()) {
        return;
    }
    if (it->second == id) {
        // We are the originator (hit in the local store).
        auto entry = ops_.find(msg.op);
        if (entry) {
            AccessResult result;
            result.ok = true;
            result.intersected = true;
            result.value = value;
            result.nodes_contacted = entry->state.tracker->covered;
            ops_.resolve(msg.op, result);
        }
        return;
    }
    ctx_.world.stack(id).send_unicast(it->second, reply, nullptr);
}

void FloodingStrategy::access(AccessKind kind, util::NodeId origin,
                              util::Key key, Value value,
                              obs::TraceId trace, AccessCallback done) {
    const util::AccessId op = next_op(origin);
    auto tracker = std::make_shared<FloodTracker>();
    auto entry = ops_.open(op, std::move(done), ctx_.op_timeout,
                            [tracker](AccessResult& r) {
                                r.intersected = tracker->hit;
                                r.nodes_contacted = tracker->covered;
                            });
    entry->state.kind = kind;
    entry->state.key = key;
    entry->state.value = value;
    entry->state.tracker = std::move(tracker);
    entry->state.trace = trace;

    const int first_ttl = (config_.expanding_ring &&
                           kind == AccessKind::kLookup)
                              ? 1
                              : config_.flood_ttl;
    launch_round(op, origin, first_ttl);
}

void FloodingStrategy::launch_round(util::AccessId op, util::NodeId origin,
                                    int ttl) {
    auto entry = ops_.find(op);
    if (!entry || !ctx_.world.alive(origin)) {
        return;
    }
    OpState& state = entry->state;
    state.round_ttl = ttl;

    auto msg = std::make_shared<FloodMsg>();
    msg->trace = state.trace;
    msg->strategy_tag = tag_;
    msg->op = op;
    msg->round_ttl = ttl;
    // The originator "receives" its own flood below, which decrements the
    // TTL once before the first transmission; +1 keeps the usual TTL
    // semantics where a TTL-k flood covers nodes up to k hops away.
    msg->ttl = ttl + 1;
    msg->kind = state.kind;
    msg->key = state.key;
    msg->value = state.value;
    msg->origin = origin;
    msg->tracker = state.tracker;
    if (state.kind == AccessKind::kAdvertise && config_.quorum_size > 0) {
        // Whole-network advertise floods: each node joins w.p. |Q|/n (§4.4).
        const double n = static_cast<double>(
            std::max<std::size_t>(1, ctx_.world.alive_count()));
        msg->join_probability =
            std::min(1.0, static_cast<double>(config_.quorum_size) / n);
    }

    // The originator covers itself, then floods.
    if (parents_.size() <= origin) {
        parents_.resize(origin + 1);
    }
    handle_flood(origin, origin, msg);

    // Forget this round's parent pointers once replies can no longer be in
    // flight (bounds per-node state across long runs).
    // pqs-lint: fire-and-forget(GC sweep over this strategy's own maps;
    // the strategy is World-service-owned and outlives the event queue)
    ctx_.world.simulator().schedule_in(
        settle_time(ttl) + 10 * sim::kSecond, [this, op, ttl] {
            const RoundKey round{op, ttl};
            for (auto& per_node : parents_) {
                per_node.erase(round);
            }
        });

    // Round completion: resolve advertises; for lookups either escalate the
    // ring or declare a miss if no reply arrived.
    // pqs-lint: fire-and-forget(round-completion check; a resolved or
    // erased op makes the body a no-op via the ops_.find miss)
    ctx_.world.simulator().schedule_in(settle_time(ttl), [this, op, origin] {
        auto e = ops_.find(op);
        if (!e) {
            return;  // already resolved by a reply
        }
        OpState& s = e->state;
        if (s.kind == AccessKind::kAdvertise) {
            AccessResult result;
            result.ok = s.tracker->joined > 0;
            result.nodes_contacted = s.tracker->joined;
            ops_.resolve(op, result);
            return;
        }
        if (config_.expanding_ring && s.round_ttl < config_.flood_ttl) {
            launch_round(op, origin, s.round_ttl + 1);
            return;
        }
        AccessResult result;
        result.ok = false;
        result.intersected = s.tracker->hit;
        result.nodes_contacted = s.tracker->covered;
        ops_.resolve(op, result);
    });
}

}  // namespace pqs::core
