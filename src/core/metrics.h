// Result types for quorum accesses and per-run summaries.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"
#include "util/ids.h"

namespace pqs::core {

// Opaque value stored in the location service (e.g. an encoded location).
using Value = std::uint64_t;

struct AccessResult {
    // Advertise: the quorum reached its target size.
    // Lookup: a hit reply actually arrived at the originator.
    bool ok = false;
    // Lookup only: the access touched a node storing the key, whether or
    // not the reply survived the trip back (Fig. 13(b) vs. 13(a)).
    bool intersected = false;
    std::optional<Value> value;
    // With StrategyConfig::collect_all_replies: every value returned by a
    // quorum member (used by registers to select the highest version).
    std::vector<Value> values;
    // With collect_all_replies: the quorum member that sent values[i] is
    // responders[i]. Lets callers remember which concrete nodes answered
    // (e.g. the svc/ per-key quorum cache re-targets them directly).
    std::vector<util::NodeId> responders;
    // Distinct quorum nodes contacted by this access.
    std::size_t nodes_contacted = 0;
    // Virtual time from the first issue of the access to its final
    // resolution — end to end across retries, backoff delays included.
    sim::Time latency = 0;
    bool timed_out = false;
    // b-masking value voting (BiquorumSpec::byzantine_b > 0): the lookup
    // got replies but no value reached > b concurring votes, so nothing
    // can be trusted; ok is false and value is cleared.
    bool inconclusive = false;
    // Replies that concurred with the returned value (0 when not voting).
    std::size_t winner_votes = 0;
    // How many access attempts this result reflects (1 = first try;
    // >1 when ServiceContext::retry re-issued a failed access).
    int attempts = 1;
    // Trace span of this access (0 = untraced).
    obs::TraceId trace = 0;
};

using AccessCallback = std::function<void(const AccessResult&)>;

}  // namespace pqs::core
