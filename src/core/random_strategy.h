// RANDOM access strategy (§4.1): the quorum is a uniformly random node set.
// Two implementations, as in the paper:
//  - membership-based: targets come from a membership service view and are
//    contacted through AODV unicast routing;
//  - sampling-based: each quorum member is reached by a maximum-degree
//    random walk of ~mixing-time length (no routing, no membership).
#pragma once

#include <memory>
#include <vector>

#include "core/access_strategy.h"

namespace pqs::core {

class RandomStrategy final : public AccessStrategy {
public:
    enum class Mode { kMembership, kSampling };

    RandomStrategy(ServiceContext& ctx, StrategyConfig config,
                   std::uint32_t tag, Mode mode);
    // Cancels the reply-grace timers of still-pending ops: their events
    // capture `this` and must not outlive the strategy.
    ~RandomStrategy() override;

    std::string name() const override;
    void attach_node(util::NodeId id) override;
    void access(AccessKind kind, util::NodeId origin, util::Key key,
                Value value, obs::TraceId trace,
                AccessCallback done) override;
    // Directed access (membership mode): contacts the given targets
    // (truncated/topped-up to the configured quorum size) with §6.2
    // replacements disabled, so a dead cached target genuinely misses
    // instead of being silently healed. Sampling mode has no addressable
    // targets and falls back to a plain access.
    void access_directed(AccessKind kind, util::NodeId origin, util::Key key,
                         Value value,
                         const std::vector<util::NodeId>& targets,
                         obs::TraceId trace, AccessCallback done) override;
    void on_reverse_reply(util::NodeId origin,
                          const ReverseReplyMsg& msg) override;

private:
    struct OpState {
        AccessKind kind = AccessKind::kLookup;
        util::Key key = 0;
        Value value = 0;
        std::vector<util::NodeId> targets;
        std::size_t target_quorum = 0;  // |Q| asked for (targets may grow
                                        // with §6.2 replacements)
        std::size_t next_target = 0;   // serial cursor
        std::size_t outstanding = 0;   // in-flight routed sends
        std::size_t delivered = 0;
        bool serial = false;
        std::shared_ptr<IntersectionProbe> probe;
        std::vector<Value> collected;  // collect_all_replies mode
        // Parallel to `collected`: which quorum member sent each value.
        std::vector<util::NodeId> responder_ids;
        int replacements_left = 0;     // §6.2 application adaptation
        bool all_sent = false;
        std::size_t walks_ended = 0;  // sampling mode
        sim::EventId grace_timer = sim::kInvalidEvent;
        obs::TraceId trace = 0;
    };

    std::vector<util::NodeId> pick_targets(util::NodeId origin,
                                           std::size_t k);
    // Issues the op's already-chosen target list (serial or parallel).
    void launch_targets(util::AccessId op, util::NodeId origin);
    void send_to_target(util::AccessId op, util::NodeId origin,
                        util::NodeId target);
    void on_target_resolved(util::AccessId op, util::NodeId origin,
                            bool delivered);
    void maybe_finish(util::AccessId op);
    void finish(util::AccessId op, bool hit, Value value);

    // Sampling mode.
    void launch_sampling_walks(util::AccessId op, util::NodeId origin);
    struct SamplingWalkMsg;
    void sampling_visit(util::NodeId at,
                        std::shared_ptr<const SamplingWalkMsg> msg);
    void sampling_forward(util::NodeId at,
                          std::shared_ptr<const SamplingWalkMsg> msg,
                          int salvage_left);
    void sampling_terminal(util::NodeId at,
                           std::shared_ptr<const SamplingWalkMsg> msg);

    Mode mode_;
    OpTable<OpState> ops_;
    util::Rng rng_;
};

}  // namespace pqs::core
