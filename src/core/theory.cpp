#include "core/theory.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

namespace pqs::core {

namespace {
void check_eps(double eps) {
    if (!(eps > 0.0 && eps < 1.0)) {
        throw std::invalid_argument("epsilon must be in (0, 1)");
    }
}
}  // namespace

double nonintersection_upper_bound(std::size_t qa, std::size_t ql,
                                   std::size_t n) {
    if (n == 0) {
        throw std::invalid_argument("n must be > 0");
    }
    return std::exp(-static_cast<double>(qa) * static_cast<double>(ql) /
                    static_cast<double>(n));
}

double nonintersection_exact(std::size_t qa, std::size_t ql, std::size_t n) {
    if (n == 0) {
        throw std::invalid_argument("n must be > 0");
    }
    if (qa + ql > n) {
        return 0.0;  // pigeonhole: they must intersect
    }
    // Work in log space to avoid underflow for large quorums.
    double log_p = 0.0;
    for (std::size_t i = 0; i < qa; ++i) {
        log_p += std::log(static_cast<double>(n - ql - i)) -
                 std::log(static_cast<double>(n - i));
    }
    return std::exp(log_p);
}

double intersection_probability(std::size_t qa, std::size_t ql,
                                std::size_t n) {
    return 1.0 - nonintersection_exact(qa, ql, n);
}

double min_quorum_product(std::size_t n, double eps) {
    check_eps(eps);
    return static_cast<double>(n) * std::log(1.0 / eps);
}

std::size_t symmetric_quorum_size(std::size_t n, double eps) {
    return static_cast<std::size_t>(
        std::ceil(std::sqrt(min_quorum_product(n, eps))));
}

std::size_t lookup_size_for(std::size_t qa, std::size_t n, double eps) {
    if (qa == 0) {
        throw std::invalid_argument("advertise quorum size must be > 0");
    }
    const double needed = min_quorum_product(n, eps) /
                          static_cast<double>(qa);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(needed)));
}

namespace {
// ln Pr[X <= b] <= -mu + b·(1 + ln mu - ln b) for b >= 1 (Poisson
// Chernoff lower tail); -mu at b = 0. Only meaningful for mu > b.
double log_masking_bound(double mu, std::size_t b) {
    if (b == 0) {
        return -mu;
    }
    const double bd = static_cast<double>(b);
    return -mu + bd * (1.0 + std::log(mu) - std::log(bd));
}
}  // namespace

double masking_failure_bound(std::size_t qa, std::size_t ql, std::size_t n,
                             std::size_t b) {
    if (n == 0) {
        throw std::invalid_argument("n must be > 0");
    }
    if (qa <= b) {
        return 1.0;  // the adversary can own the whole advertise quorum
    }
    const double mu = static_cast<double>(qa - b) * static_cast<double>(ql) /
                      static_cast<double>(n);
    if (mu <= static_cast<double>(b)) {
        return 1.0;  // lower-tail bound is vacuous at or below the mean
    }
    return std::min(1.0, std::exp(log_masking_bound(mu, b)));
}

double masking_mu_min(double eps, std::size_t b) {
    check_eps(eps);
    if (b == 0) {
        return std::log(1.0 / eps);  // Corollary 5.3, exactly
    }
    const double log_eps = std::log(eps);
    // log_masking_bound is 0 at mu = b and strictly decreasing beyond
    // (d/dmu = -1 + b/mu < 0), so the root is unique in (b, inf).
    double lo = static_cast<double>(b);
    double hi = static_cast<double>(b) + std::log(1.0 / eps) + 1.0;
    while (log_masking_bound(hi, b) > log_eps) {
        hi *= 2.0;
    }
    for (int i = 0; i < 200 && hi - lo > 1e-12 * hi; ++i) {
        const double mid = 0.5 * (lo + hi);
        (log_masking_bound(mid, b) > log_eps ? lo : hi) = mid;
    }
    return hi;
}

double min_masking_quorum_product(std::size_t n, double eps, std::size_t b) {
    if (b == 0) {
        return min_quorum_product(n, eps);
    }
    return static_cast<double>(n) * masking_mu_min(eps, b);
}

std::size_t masking_symmetric_quorum_size(std::size_t n, double eps,
                                          std::size_t b) {
    if (b == 0) {
        return symmetric_quorum_size(n, eps);
    }
    const double mu = masking_mu_min(eps, b);
    const double bd = static_cast<double>(b);
    const double q = 0.5 * (bd + std::sqrt(bd * bd +
                                           4.0 * static_cast<double>(n) * mu));
    return static_cast<std::size_t>(std::ceil(q));
}

std::size_t masking_lookup_size_for(std::size_t qa, std::size_t n, double eps,
                                    std::size_t b) {
    if (b == 0) {
        return lookup_size_for(qa, n, eps);
    }
    if (qa <= b) {
        throw std::invalid_argument(
            "advertise quorum must exceed the fault budget b");
    }
    const double needed = min_masking_quorum_product(n, eps, b) /
                          static_cast<double>(qa - b);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(needed)));
}

double access_load(std::size_t q, std::size_t n) {
    if (n == 0 || q > n) {
        throw std::invalid_argument("access_load: need 0 <= q <= n, n > 0");
    }
    return static_cast<double>(q) / static_cast<double>(n);
}

double optimal_size_ratio(double tau, double cost_a, double cost_l) {
    if (tau <= 0.0 || cost_a <= 0.0 || cost_l <= 0.0) {
        throw std::invalid_argument(
            "tau and per-node costs must be positive");
    }
    return cost_a / (tau * cost_l);
}

SizePair optimal_sizes(std::size_t n, double eps, double tau, double cost_a,
                       double cost_l) {
    const double product = min_quorum_product(n, eps);
    // |Ql| = sqrt(product * cost_a / (tau * cost_l)) (Lemma 5.6 proof).
    const double ql =
        std::sqrt(product * cost_a / (tau * cost_l));
    SizePair sizes;
    sizes.lookup = std::max<std::size_t>(
        1, std::min<std::size_t>(
               n, static_cast<std::size_t>(std::ceil(ql))));
    sizes.advertise = lookup_size_for(sizes.lookup, n, eps);
    return sizes;
}

double total_access_cost(double n_advertise, double n_lookup, std::size_t qa,
                         std::size_t ql, double cost_a, double cost_l) {
    return n_advertise * static_cast<double>(qa) * cost_a +
           n_lookup * static_cast<double>(ql) * cost_l;
}

double degraded_miss_bound(double eps0, double f, ChurnKind kind,
                           LookupSizing sizing) {
    check_eps(eps0);
    if (f < 0.0 || f >= 1.0) {
        throw std::invalid_argument("churn fraction must be in [0, 1)");
    }
    switch (kind) {
        case ChurnKind::kFailuresOnly:
            // n(t) = (1-f)n, |Qa(t)| = (1-f)|Qa|: the factors cancel.
            return sizing == LookupSizing::kFixed
                       ? eps0
                       : std::pow(eps0, std::sqrt(1.0 - f));
        case ChurnKind::kJoinsOnly:
            // n(t) = (1+f)n, advertise quorum intact.
            return sizing == LookupSizing::kFixed
                       ? std::pow(eps0, 1.0 / (1.0 + f))
                       : std::pow(eps0, 1.0 / std::sqrt(1.0 + f));
        case ChurnKind::kFailuresAndJoins:
            // Same number fail and join: n(t) = n, |Qa(t)| = (1-f)|Qa|.
            // (Adjustment is a no-op since n is unchanged.)
            return std::pow(eps0, 1.0 - f);
    }
    throw std::logic_error("unknown churn kind");
}

double duty_cycled_miss_bound(std::size_t qa, std::size_t ql, std::size_t n,
                              double duty) {
    if (n == 0) {
        throw std::invalid_argument("n must be > 0");
    }
    const double d = std::clamp(duty, 0.0, 1.0);
    if (d >= 1.0) {
        // Bit-exact reduction: the mixture form equals exp(-qa·ql/n)
        // only up to FP rounding, so delegate (masking_* b=0 pattern).
        return nonintersection_upper_bound(qa, ql, n);
    }
    const double hit_one =
        1.0 - std::exp(-static_cast<double>(ql) / static_cast<double>(n));
    return std::pow(1.0 - d * hit_one, static_cast<double>(qa));
}

double lease_coverage(double lease_s, double refresh_interval_s) {
    if (lease_s <= 0.0) {
        return 1.0;  // no expiry: the value outlives any refresh gap
    }
    if (refresh_interval_s <= 0.0) {
        return 0.0;  // finite lease, never refreshed
    }
    return std::min(1.0, lease_s / refresh_interval_s);
}

double timed_quorum_miss_bound(std::size_t qa, std::size_t ql, std::size_t n,
                               double duty, double lease_s,
                               double refresh_interval_s) {
    const double c = lease_coverage(lease_s, refresh_interval_s);
    return (1.0 - c) + c * duty_cycled_miss_bound(qa, ql, n, duty);
}

std::size_t fault_tolerance(std::size_t n, std::size_t q) {
    if (q == 0 || q > n) {
        throw std::invalid_argument("need 0 < q <= n");
    }
    return n - q + 1;
}

double failure_probability_bound(std::size_t n, double k, double p) {
    if (n == 0 || k <= 0.0 || p < 0.0 || p > 1.0) {
        throw std::invalid_argument(
            "failure_probability_bound: need n > 0, k > 0, p in [0, 1]");
    }
    const double slack = 1.0 - p - k / std::sqrt(static_cast<double>(n));
    if (slack <= 0.0) {
        return 1.0;  // beyond the tolerable crash probability
    }
    return std::exp(-static_cast<double>(n) * slack * slack / 2.0);
}

std::size_t majority_quorum_size(std::size_t n) {
    if (n == 0) {
        throw std::invalid_argument("majority_quorum_size: n must be > 0");
    }
    return n / 2 + 1;
}

double rgg_connectivity_radius(std::size_t n, double safety) {
    if (n < 2) {
        throw std::invalid_argument("n must be >= 2");
    }
    return std::sqrt(safety * std::log(static_cast<double>(n)) /
                     (std::numbers::pi * static_cast<double>(n)));
}

double rgg_diameter_hops(std::size_t n, double avg_degree) {
    if (avg_degree <= 0.0) {
        throw std::invalid_argument("avg_degree must be > 0");
    }
    // side/range = sqrt(pi n / d_avg); the hop diameter tracks the
    // corner-to-corner Euclidean diameter sqrt(2)*side over range.
    return std::sqrt(2.0 * std::numbers::pi * static_cast<double>(n) /
                     avg_degree);
}

double expected_route_hops(std::size_t n, double avg_degree) {
    // Mean distance between two uniform points in a square is ~0.52*side;
    // each hop advances ~0.8*range along the line on dense RGGs.
    return 0.65 * std::sqrt(std::numbers::pi * static_cast<double>(n) /
                            avg_degree);
}

double pct_upper_bound(std::size_t t, double alpha) {
    return 2.0 * alpha * static_cast<double>(t);
}

double crossing_time_lower_bound(double side, double range) {
    if (side <= 0.0 || range <= 0.0 || range > side) {
        throw std::invalid_argument("need 0 < range <= side");
    }
    const double half_columns = side / (2.0 * range);
    return half_columns * half_columns;
}

double md_mixing_time(std::size_t n) { return static_cast<double>(n) / 2.0; }

std::string strategy_name(StrategyKind kind) {
    switch (kind) {
        case StrategyKind::kRandom: return "RANDOM";
        case StrategyKind::kRandomSampling: return "RANDOM(sampling)";
        case StrategyKind::kRandomOpt: return "RANDOM-OPT";
        case StrategyKind::kPath: return "PATH";
        case StrategyKind::kUniquePath: return "UNIQUE-PATH";
        case StrategyKind::kFlooding: return "FLOODING";
    }
    return "?";
}

double access_cost_messages(StrategyKind kind, std::size_t q, std::size_t n,
                            double avg_degree) {
    const double qd = static_cast<double>(q);
    switch (kind) {
        case StrategyKind::kRandom:
            // q routed messages of expected_route_hops each.
            return qd * expected_route_hops(n, avg_degree);
        case StrategyKind::kRandomSampling:
            // q maximum-degree walks of ~mixing-time length each.
            return qd * md_mixing_time(n);
        case StrategyKind::kRandomOpt:
            // ln(n) routed messages; en-route nodes join the quorum.
            return std::log(static_cast<double>(n)) *
                   expected_route_hops(n, avg_degree);
        case StrategyKind::kPath:
            // PCT(q) with the empirical 2*alpha ~ 1.7 at d_avg = 10 (§4.2).
            return 1.7 * qd;
        case StrategyKind::kUniquePath:
            // Self-avoiding walks almost never revisit for q = O(sqrt n).
            return 1.05 * qd;
        case StrategyKind::kFlooding:
            // Every covered node broadcasts once; coverage granularity
            // overshoots the target by ~d_avg/ln(d_avg) on the last ring.
            return qd * (1.0 + 1.0 / std::max(1.0, std::log(avg_degree)));
    }
    throw std::logic_error("unknown strategy kind");
}

double estimate_network_size(std::size_t samples, std::size_t collisions) {
    if (samples < 2 || collisions == 0) {
        throw std::invalid_argument(
            "need >= 2 samples and >= 1 collision to estimate");
    }
    return static_cast<double>(samples) *
           static_cast<double>(samples - 1) /
           (2.0 * static_cast<double>(collisions));
}

double estimate_network_size(const std::vector<util::NodeId>& samples) {
    std::unordered_map<util::NodeId, std::size_t> counts;
    for (const util::NodeId id : samples) {
        ++counts[id];
    }
    std::size_t collisions = 0;
    for (const auto& [id, c] : counts) {
        collisions += c * (c - 1) / 2;
    }
    return estimate_network_size(samples.size(), collisions);
}

}  // namespace pqs::core
