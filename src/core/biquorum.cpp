#include "core/biquorum.h"

#include "net/node_stack.h"

namespace pqs::core {

namespace {
constexpr std::uint32_t kAdvertiseTag = 1;
constexpr std::uint32_t kLookupTag = 2;
}  // namespace

VoteOutcome vote_values(const std::vector<Value>& values, std::size_t b) {
    VoteOutcome outcome;
    std::unordered_map<Value, std::size_t> tally;
    for (const Value v : values) {
        ++tally[v];
    }
    outcome.distinct = tally.size();
    bool first = true;
    for (const auto& [value, votes] : tally) {
        // Order-independent winner: more votes wins, smaller value breaks
        // ties — the unordered iteration order never shows.
        if (first || votes > outcome.winner_votes ||
            (votes == outcome.winner_votes && value < outcome.winner)) {
            outcome.winner = value;
            outcome.winner_votes = votes;
            first = false;
        }
    }
    outcome.outvoted = values.size() - outcome.winner_votes;
    outcome.conclusive = outcome.winner_votes > b;
    return outcome;
}

void BiquorumSystem::apply_vote(AccessResult& r, util::NodeId origin,
                                obs::TraceId trace) const {
    if (!r.ok) {
        return;  // a miss/timeout stays a miss — nothing to vote on
    }
    const VoteOutcome vote = vote_values(r.values, spec_.byzantine_b);
    r.winner_votes = vote.winner_votes;
    if (vote.conclusive) {
        r.value = vote.winner;
        obs::record(trace, obs::EventKind::kVoteWin, origin,
                    vote.winner_votes, vote.outvoted);
        return;
    }
    r.ok = false;
    r.inconclusive = true;
    r.value.reset();
    obs::record(trace, obs::EventKind::kVoteInconclusive, origin,
                vote.distinct, r.values.size());
}

BiquorumSystem::BiquorumSystem(net::World& world, BiquorumSpec spec,
                               membership::MembershipService* membership)
    : spec_(spec), ctx_(world), router_(world) {
    spec_.resolve_sizes(world.params().n);
    ctx_.membership = membership;
    ctx_.reply_router = &router_;

    advertise_ = make_strategy(ctx_, spec_.advertise, kAdvertiseTag);
    lookup_ = make_strategy(ctx_, spec_.lookup, kLookupTag);

    router_.set_deliver(
        [this](util::NodeId origin, const ReverseReplyMsg& msg) {
            if (msg.strategy_tag == kAdvertiseTag) {
                advertise_->on_reverse_reply(origin, msg);
            } else if (msg.strategy_tag == kLookupTag) {
                lookup_->on_reverse_reply(origin, msg);
            }
        });
    // §7.1 caching: reply relays keep bystander copies of mappings.
    router_.set_cache([this](util::NodeId at, util::Key key, Value value) {
        ctx_.cache_value(at, key, value);
    });

    for (util::NodeId id = 0; id < world.node_count(); ++id) {
        attach_node(id);
    }
    world.add_spawn_listener([this](util::NodeId id) { attach_node(id); });
}

BiquorumSystem::~BiquorumSystem() {
    for (const auto& [token, id] : retry_timers_) {
        ctx_.world.simulator().cancel(id);
    }
}

void BiquorumSystem::attach_node(util::NodeId id) {
    router_.attach_node(id);
    advertise_->attach_node(id);
    lookup_->attach_node(id);
    if (spec_.advertise.enroute_cache) {
        // §7.1: nodes that forward a routed advertise keep a bystander
        // copy. (Distinct from RANDOM-OPT, whose en-route nodes become
        // full quorum members.)
        ctx_.world.stack(id).add_snoop_handler(
            [this, id](const net::Packet& packet) {
                const auto req =
                    std::dynamic_pointer_cast<const QuorumRequestMsg>(
                        packet.data().app);
                if (req && req->strategy_tag == kAdvertiseTag &&
                    req->kind == AccessKind::kAdvertise) {
                    ctx_.cache_value(id, req->key, req->value);
                }
                return false;  // never consumes the packet
            });
    }
}

double BiquorumSystem::intersection_guarantee() const {
    return 1.0 - nonintersection_upper_bound(spec_.advertise.quorum_size,
                                             spec_.lookup.quorum_size,
                                             ctx_.world.params().n);
}

void BiquorumSystem::advertise(util::NodeId origin, util::Key key,
                               Value value, AccessCallback done) {
    ctx_.load.count_access();
    const obs::TraceId trace = obs::maybe_new_trace();
    obs::record(trace, obs::EventKind::kSpanBegin, origin,
                static_cast<std::uint64_t>(AccessKind::kAdvertise), key);
    access_with_retry(AccessKind::kAdvertise, origin, key, value, trace,
                      ctx_.world.simulator().now(), std::move(done), 1);
}

void BiquorumSystem::lookup(util::NodeId origin, util::Key key,
                            AccessCallback done) {
    ctx_.load.count_access();
    const obs::TraceId trace = obs::maybe_new_trace();
    obs::record(trace, obs::EventKind::kSpanBegin, origin,
                static_cast<std::uint64_t>(AccessKind::kLookup), key);
    access_with_retry(AccessKind::kLookup, origin, key, 0, trace,
                      ctx_.world.simulator().now(), std::move(done), 1);
}

void BiquorumSystem::lookup_directed(util::NodeId origin, util::Key key,
                                     const std::vector<util::NodeId>& targets,
                                     AccessCallback done) {
    ctx_.load.count_access();
    const obs::TraceId trace = obs::maybe_new_trace();
    obs::record(trace, obs::EventKind::kSpanBegin, origin,
                static_cast<std::uint64_t>(AccessKind::kLookup), key);
    access_with_retry(AccessKind::kLookup, origin, key, 0, trace,
                      ctx_.world.simulator().now(), std::move(done), 1,
                      &targets);
}

namespace {

// Exponential backoff before attempt `attempt + 1`.
sim::Time retry_delay(const RetryPolicy& policy, int attempt) {
    double delay = static_cast<double>(policy.backoff);
    for (int i = 1; i < attempt; ++i) {
        delay *= policy.backoff_factor;
    }
    return static_cast<sim::Time>(delay);
}

// Everything a deferred retry needs, heap-shared so the scheduled closure
// stays within the simulator's inline-callback budget.
struct RetryState {
    AccessKind kind;
    util::NodeId origin;
    util::Key key;
    Value value;
    obs::TraceId trace;
    sim::Time first_issue;
    AccessCallback done;
    int attempt;
};

}  // namespace

void BiquorumSystem::access_with_retry(
    AccessKind kind, util::NodeId origin, util::Key key, Value value,
    obs::TraceId trace, sim::Time first_issue, AccessCallback done,
    int attempt, const std::vector<util::NodeId>* directed) {
    AccessStrategy& strategy =
        kind == AccessKind::kAdvertise ? *advertise_ : *lookup_;
    auto on_attempt =
        [this, kind, origin, key, value, trace, first_issue, attempt,
         done = std::move(done)](const AccessResult& raw) mutable {
            AccessResult r = raw;
            if (kind == AccessKind::kLookup && spec_.byzantine_b > 0) {
                // Vote before the retry decision: an inconclusive attempt
                // is retried like any other failure.
                apply_vote(r, origin, trace);
            }
            const RetryPolicy& policy = ctx_.retry;
            if (!r.ok && attempt < policy.max_attempts &&
                ctx_.world.alive(origin)) {
                const sim::Time delay = retry_delay(policy, attempt);
                obs::record(trace, obs::EventKind::kRetryScheduled, origin,
                            static_cast<std::uint64_t>(attempt),
                            static_cast<std::uint64_t>(delay));
                auto state = std::make_shared<RetryState>(
                    RetryState{kind, origin, key, value, trace, first_issue,
                               std::move(done), attempt});
                const std::uint64_t token = next_retry_token_++;
                retry_timers_[token] = ctx_.world.simulator().schedule_in(
                    delay, [this, token, state] {
                        retry_timers_.erase(token);
                        access_with_retry(state->kind, state->origin,
                                          state->key, state->value,
                                          state->trace, state->first_issue,
                                          std::move(state->done),
                                          state->attempt + 1);
                    });
                return;
            }
            if (r.timed_out) {
                obs::record(trace, obs::EventKind::kOpTimeout, origin);
            }
            // Final resolution (timeouts included — their timer fired):
            // this access now counts in the L(S) denominator. Ops still
            // in flight at teardown never reach this point.
            ctx_.load.count_access_resolved();
            obs::record(trace, obs::EventKind::kSpanEnd, origin,
                        static_cast<std::uint64_t>(kind),
                        static_cast<std::uint64_t>(r.ok));
            if (done) {
                AccessResult final_result = r;
                final_result.attempts = attempt;
                final_result.trace = trace;
                // The per-attempt strategy stamped only its own latency;
                // report end to end from the first issue instead.
                final_result.latency =
                    ctx_.world.simulator().now() - first_issue;
                done(final_result);
            }
        };
    if (directed != nullptr) {
        strategy.access_directed(kind, origin, key, value, *directed, trace,
                                 std::move(on_attempt));
    } else {
        strategy.access(kind, origin, key, value, trace,
                        std::move(on_attempt));
    }
}

}  // namespace pqs::core
