#include "core/biquorum.h"

#include "net/node_stack.h"

namespace pqs::core {

namespace {
constexpr std::uint32_t kAdvertiseTag = 1;
constexpr std::uint32_t kLookupTag = 2;
}  // namespace

BiquorumSystem::BiquorumSystem(net::World& world, BiquorumSpec spec,
                               membership::MembershipService* membership)
    : spec_(spec), ctx_(world), router_(world) {
    spec_.resolve_sizes(world.params().n);
    ctx_.membership = membership;
    ctx_.reply_router = &router_;

    advertise_ = make_strategy(ctx_, spec_.advertise, kAdvertiseTag);
    lookup_ = make_strategy(ctx_, spec_.lookup, kLookupTag);

    router_.set_deliver(
        [this](util::NodeId origin, const ReverseReplyMsg& msg) {
            if (msg.strategy_tag == kAdvertiseTag) {
                advertise_->on_reverse_reply(origin, msg);
            } else if (msg.strategy_tag == kLookupTag) {
                lookup_->on_reverse_reply(origin, msg);
            }
        });
    // §7.1 caching: reply relays keep bystander copies of mappings.
    router_.set_cache([this](util::NodeId at, util::Key key, Value value) {
        ctx_.store(at).store_bystander(key, value);
    });

    for (util::NodeId id = 0; id < world.node_count(); ++id) {
        attach_node(id);
    }
    world.add_spawn_listener([this](util::NodeId id) { attach_node(id); });
}

BiquorumSystem::~BiquorumSystem() = default;

void BiquorumSystem::attach_node(util::NodeId id) {
    router_.attach_node(id);
    advertise_->attach_node(id);
    lookup_->attach_node(id);
    if (spec_.advertise.enroute_cache) {
        // §7.1: nodes that forward a routed advertise keep a bystander
        // copy. (Distinct from RANDOM-OPT, whose en-route nodes become
        // full quorum members.)
        ctx_.world.stack(id).add_snoop_handler(
            [this, id](const net::Packet& packet) {
                const auto req =
                    std::dynamic_pointer_cast<const QuorumRequestMsg>(
                        packet.data().app);
                if (req && req->strategy_tag == kAdvertiseTag &&
                    req->kind == AccessKind::kAdvertise) {
                    ctx_.store(id).store_bystander(req->key, req->value);
                }
                return false;  // never consumes the packet
            });
    }
}

double BiquorumSystem::intersection_guarantee() const {
    return 1.0 - nonintersection_upper_bound(spec_.advertise.quorum_size,
                                             spec_.lookup.quorum_size,
                                             ctx_.world.params().n);
}

void BiquorumSystem::advertise(util::NodeId origin, util::Key key,
                               Value value, AccessCallback done) {
    advertise_->access(AccessKind::kAdvertise, origin, key, value,
                       std::move(done));
}

void BiquorumSystem::lookup(util::NodeId origin, util::Key key,
                            AccessCallback done) {
    lookup_->access(AccessKind::kLookup, origin, key, 0, std::move(done));
}

}  // namespace pqs::core
