
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_strategy.cpp" "src/CMakeFiles/pqs.dir/core/access_strategy.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/access_strategy.cpp.o.d"
  "/root/repo/src/core/biquorum.cpp" "src/CMakeFiles/pqs.dir/core/biquorum.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/biquorum.cpp.o.d"
  "/root/repo/src/core/flooding_strategy.cpp" "src/CMakeFiles/pqs.dir/core/flooding_strategy.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/flooding_strategy.cpp.o.d"
  "/root/repo/src/core/location_service.cpp" "src/CMakeFiles/pqs.dir/core/location_service.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/location_service.cpp.o.d"
  "/root/repo/src/core/maintenance.cpp" "src/CMakeFiles/pqs.dir/core/maintenance.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/maintenance.cpp.o.d"
  "/root/repo/src/core/path_strategy.cpp" "src/CMakeFiles/pqs.dir/core/path_strategy.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/path_strategy.cpp.o.d"
  "/root/repo/src/core/quorum_spec.cpp" "src/CMakeFiles/pqs.dir/core/quorum_spec.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/quorum_spec.cpp.o.d"
  "/root/repo/src/core/random_opt_strategy.cpp" "src/CMakeFiles/pqs.dir/core/random_opt_strategy.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/random_opt_strategy.cpp.o.d"
  "/root/repo/src/core/random_strategy.cpp" "src/CMakeFiles/pqs.dir/core/random_strategy.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/random_strategy.cpp.o.d"
  "/root/repo/src/core/register.cpp" "src/CMakeFiles/pqs.dir/core/register.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/register.cpp.o.d"
  "/root/repo/src/core/reply_path.cpp" "src/CMakeFiles/pqs.dir/core/reply_path.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/reply_path.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/pqs.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/CMakeFiles/pqs.dir/core/theory.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/core/theory.cpp.o.d"
  "/root/repo/src/geom/graph.cpp" "src/CMakeFiles/pqs.dir/geom/graph.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/geom/graph.cpp.o.d"
  "/root/repo/src/geom/random_walk.cpp" "src/CMakeFiles/pqs.dir/geom/random_walk.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/geom/random_walk.cpp.o.d"
  "/root/repo/src/geom/rgg.cpp" "src/CMakeFiles/pqs.dir/geom/rgg.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/geom/rgg.cpp.o.d"
  "/root/repo/src/geom/spatial_grid.cpp" "src/CMakeFiles/pqs.dir/geom/spatial_grid.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/geom/spatial_grid.cpp.o.d"
  "/root/repo/src/mac/csma_mac.cpp" "src/CMakeFiles/pqs.dir/mac/csma_mac.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/mac/csma_mac.cpp.o.d"
  "/root/repo/src/membership/oracle_membership.cpp" "src/CMakeFiles/pqs.dir/membership/oracle_membership.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/membership/oracle_membership.cpp.o.d"
  "/root/repo/src/membership/rawms.cpp" "src/CMakeFiles/pqs.dir/membership/rawms.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/membership/rawms.cpp.o.d"
  "/root/repo/src/mobility/mobility.cpp" "src/CMakeFiles/pqs.dir/mobility/mobility.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/mobility/mobility.cpp.o.d"
  "/root/repo/src/mobility/random_waypoint.cpp" "src/CMakeFiles/pqs.dir/mobility/random_waypoint.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/mobility/random_waypoint.cpp.o.d"
  "/root/repo/src/net/abstract_network.cpp" "src/CMakeFiles/pqs.dir/net/abstract_network.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/net/abstract_network.cpp.o.d"
  "/root/repo/src/net/aodv.cpp" "src/CMakeFiles/pqs.dir/net/aodv.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/net/aodv.cpp.o.d"
  "/root/repo/src/net/node_stack.cpp" "src/CMakeFiles/pqs.dir/net/node_stack.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/net/node_stack.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/pqs.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/world.cpp" "src/CMakeFiles/pqs.dir/net/world.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/net/world.cpp.o.d"
  "/root/repo/src/phy/channel.cpp" "src/CMakeFiles/pqs.dir/phy/channel.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/phy/channel.cpp.o.d"
  "/root/repo/src/phy/propagation.cpp" "src/CMakeFiles/pqs.dir/phy/propagation.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/phy/propagation.cpp.o.d"
  "/root/repo/src/phy/radio.cpp" "src/CMakeFiles/pqs.dir/phy/radio.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/phy/radio.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/pqs.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/pqs.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/pqs.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pqs.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/pqs.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/pqs.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
