file(REMOVE_RECURSE
  "CMakeFiles/test_biquorum.dir/test_biquorum.cpp.o"
  "CMakeFiles/test_biquorum.dir/test_biquorum.cpp.o.d"
  "test_biquorum"
  "test_biquorum.pdb"
  "test_biquorum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_biquorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
