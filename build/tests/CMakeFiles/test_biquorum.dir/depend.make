# Empty dependencies file for test_biquorum.
# This may be replaced when dependencies are built.
