# Empty compiler generated dependencies file for test_radio_channel.
# This may be replaced when dependencies are built.
