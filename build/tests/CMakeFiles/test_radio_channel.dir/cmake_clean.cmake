file(REMOVE_RECURSE
  "CMakeFiles/test_radio_channel.dir/test_radio_channel.cpp.o"
  "CMakeFiles/test_radio_channel.dir/test_radio_channel.cpp.o.d"
  "test_radio_channel"
  "test_radio_channel.pdb"
  "test_radio_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
