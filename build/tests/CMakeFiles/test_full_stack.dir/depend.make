# Empty dependencies file for test_full_stack.
# This may be replaced when dependencies are built.
