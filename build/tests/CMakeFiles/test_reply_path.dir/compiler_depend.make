# Empty compiler generated dependencies file for test_reply_path.
# This may be replaced when dependencies are built.
