file(REMOVE_RECURSE
  "CMakeFiles/test_reply_path.dir/test_reply_path.cpp.o"
  "CMakeFiles/test_reply_path.dir/test_reply_path.cpp.o.d"
  "test_reply_path"
  "test_reply_path.pdb"
  "test_reply_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reply_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
