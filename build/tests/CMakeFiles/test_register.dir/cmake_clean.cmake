file(REMOVE_RECURSE
  "CMakeFiles/test_register.dir/test_register.cpp.o"
  "CMakeFiles/test_register.dir/test_register.cpp.o.d"
  "test_register"
  "test_register.pdb"
  "test_register[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
