# Empty compiler generated dependencies file for test_rgg.
# This may be replaced when dependencies are built.
