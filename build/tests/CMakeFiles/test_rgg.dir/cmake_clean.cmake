file(REMOVE_RECURSE
  "CMakeFiles/test_rgg.dir/test_rgg.cpp.o"
  "CMakeFiles/test_rgg.dir/test_rgg.cpp.o.d"
  "test_rgg"
  "test_rgg.pdb"
  "test_rgg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
