# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_spatial_grid[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_rgg[1]_include.cmake")
include("/root/repo/build/tests/test_random_walk[1]_include.cmake")
include("/root/repo/build/tests/test_propagation[1]_include.cmake")
include("/root/repo/build/tests/test_radio_channel[1]_include.cmake")
include("/root/repo/build/tests/test_mac[1]_include.cmake")
include("/root/repo/build/tests/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/test_world[1]_include.cmake")
include("/root/repo/build/tests/test_aodv[1]_include.cmake")
include("/root/repo/build/tests/test_membership[1]_include.cmake")
include("/root/repo/build/tests/test_theory[1]_include.cmake")
include("/root/repo/build/tests/test_reply_path[1]_include.cmake")
include("/root/repo/build/tests/test_strategies[1]_include.cmake")
include("/root/repo/build/tests/test_biquorum[1]_include.cmake")
include("/root/repo/build/tests/test_register[1]_include.cmake")
include("/root/repo/build/tests/test_optimizations[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_csv[1]_include.cmake")
include("/root/repo/build/tests/test_link[1]_include.cmake")
include("/root/repo/build/tests/test_flooding[1]_include.cmake")
include("/root/repo/build/tests/test_core_units[1]_include.cmake")
include("/root/repo/build/tests/test_maintenance[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_full_stack[1]_include.cmake")
