# Empty compiler generated dependencies file for bench_crossing_time.
# This may be replaced when dependencies are built.
