file(REMOVE_RECURSE
  "CMakeFiles/bench_crossing_time.dir/bench_crossing_time.cpp.o"
  "CMakeFiles/bench_crossing_time.dir/bench_crossing_time.cpp.o.d"
  "bench_crossing_time"
  "bench_crossing_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossing_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
