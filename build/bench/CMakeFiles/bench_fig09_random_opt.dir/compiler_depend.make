# Empty compiler generated dependencies file for bench_fig09_random_opt.
# This may be replaced when dependencies are built.
