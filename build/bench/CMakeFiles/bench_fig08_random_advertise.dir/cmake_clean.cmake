file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_random_advertise.dir/bench_fig08_random_advertise.cpp.o"
  "CMakeFiles/bench_fig08_random_advertise.dir/bench_fig08_random_advertise.cpp.o.d"
  "bench_fig08_random_advertise"
  "bench_fig08_random_advertise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_random_advertise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
