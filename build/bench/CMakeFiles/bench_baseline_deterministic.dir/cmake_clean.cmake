file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_deterministic.dir/bench_baseline_deterministic.cpp.o"
  "CMakeFiles/bench_baseline_deterministic.dir/bench_baseline_deterministic.cpp.o.d"
  "bench_baseline_deterministic"
  "bench_baseline_deterministic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_deterministic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
