# Empty dependencies file for bench_baseline_deterministic.
# This may be replaced when dependencies are built.
