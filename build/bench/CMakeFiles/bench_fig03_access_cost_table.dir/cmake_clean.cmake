file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_access_cost_table.dir/bench_fig03_access_cost_table.cpp.o"
  "CMakeFiles/bench_fig03_access_cost_table.dir/bench_fig03_access_cost_table.cpp.o.d"
  "bench_fig03_access_cost_table"
  "bench_fig03_access_cost_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_access_cost_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
