# Empty dependencies file for bench_fig03_access_cost_table.
# This may be replaced when dependencies are built.
