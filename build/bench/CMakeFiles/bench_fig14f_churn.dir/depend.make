# Empty dependencies file for bench_fig14f_churn.
# This may be replaced when dependencies are built.
