file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14f_churn.dir/bench_fig14f_churn.cpp.o"
  "CMakeFiles/bench_fig14f_churn.dir/bench_fig14f_churn.cpp.o.d"
  "bench_fig14f_churn"
  "bench_fig14f_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14f_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
