# Empty compiler generated dependencies file for bench_fig12_up_up.
# This may be replaced when dependencies are built.
