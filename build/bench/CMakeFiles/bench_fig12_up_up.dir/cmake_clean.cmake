file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_up_up.dir/bench_fig12_up_up.cpp.o"
  "CMakeFiles/bench_fig12_up_up.dir/bench_fig12_up_up.cpp.o.d"
  "bench_fig12_up_up"
  "bench_fig12_up_up.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_up_up.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
