# Empty dependencies file for bench_fig11_flooding.
# This may be replaced when dependencies are built.
