file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_flooding.dir/bench_fig11_flooding.cpp.o"
  "CMakeFiles/bench_fig11_flooding.dir/bench_fig11_flooding.cpp.o.d"
  "bench_fig11_flooding"
  "bench_fig11_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
