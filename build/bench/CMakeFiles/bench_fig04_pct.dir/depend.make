# Empty dependencies file for bench_fig04_pct.
# This may be replaced when dependencies are built.
