# Empty compiler generated dependencies file for bench_fig14_mobility_repair.
# This may be replaced when dependencies are built.
