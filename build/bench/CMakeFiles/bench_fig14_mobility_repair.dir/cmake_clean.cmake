file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_mobility_repair.dir/bench_fig14_mobility_repair.cpp.o"
  "CMakeFiles/bench_fig14_mobility_repair.dir/bench_fig14_mobility_repair.cpp.o.d"
  "bench_fig14_mobility_repair"
  "bench_fig14_mobility_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mobility_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
