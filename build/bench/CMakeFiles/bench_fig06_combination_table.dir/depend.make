# Empty dependencies file for bench_fig06_combination_table.
# This may be replaced when dependencies are built.
