file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_combination_table.dir/bench_fig06_combination_table.cpp.o"
  "CMakeFiles/bench_fig06_combination_table.dir/bench_fig06_combination_table.cpp.o.d"
  "bench_fig06_combination_table"
  "bench_fig06_combination_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_combination_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
