# Empty dependencies file for bench_fig05_flooding_coverage.
# This may be replaced when dependencies are built.
