# Empty compiler generated dependencies file for bench_fig10_unique_path.
# This may be replaced when dependencies are built.
