file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mobility_no_repair.dir/bench_fig13_mobility_no_repair.cpp.o"
  "CMakeFiles/bench_fig13_mobility_no_repair.dir/bench_fig13_mobility_no_repair.cpp.o.d"
  "bench_fig13_mobility_no_repair"
  "bench_fig13_mobility_no_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mobility_no_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
