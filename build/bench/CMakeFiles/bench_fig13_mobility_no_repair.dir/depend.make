# Empty dependencies file for bench_fig13_mobility_no_repair.
# This may be replaced when dependencies are built.
