# Empty compiler generated dependencies file for mix_planner.
# This may be replaced when dependencies are built.
