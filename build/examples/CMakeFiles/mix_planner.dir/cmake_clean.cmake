file(REMOVE_RECURSE
  "CMakeFiles/mix_planner.dir/mix_planner.cpp.o"
  "CMakeFiles/mix_planner.dir/mix_planner.cpp.o.d"
  "mix_planner"
  "mix_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
