# Empty dependencies file for location_service_demo.
# This may be replaced when dependencies are built.
