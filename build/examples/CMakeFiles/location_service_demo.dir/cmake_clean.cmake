file(REMOVE_RECURSE
  "CMakeFiles/location_service_demo.dir/location_service_demo.cpp.o"
  "CMakeFiles/location_service_demo.dir/location_service_demo.cpp.o.d"
  "location_service_demo"
  "location_service_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_service_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
