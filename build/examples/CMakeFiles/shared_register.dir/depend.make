# Empty dependencies file for shared_register.
# This may be replaced when dependencies are built.
