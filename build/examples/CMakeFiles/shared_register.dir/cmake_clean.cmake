file(REMOVE_RECURSE
  "CMakeFiles/shared_register.dir/shared_register.cpp.o"
  "CMakeFiles/shared_register.dir/shared_register.cpp.o.d"
  "shared_register"
  "shared_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
